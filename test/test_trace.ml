(* The observability layer itself: span stack discipline, counter
   consistency against the executor, tile counts against the plan, and
   the Chrome-trace JSON round trip — including the acceptance check
   that [profile harris --trace-json] output is schema-valid with
   per-group tile counts matching the compiled plan. *)
module C = Polymage_compiler
module Rt = Polymage_rt
module Trace = Polymage_util.Trace
module Metrics = Polymage_util.Metrics
module Apps = Polymage_apps.Apps
open Polymage_ir

(* run [f] with tracing and metrics captured from a clean slate,
   returning (result, events, counter snapshot); both are disabled
   again afterwards. *)
let captured f =
  Trace.reset ();
  Metrics.reset ();
  Metrics.enable ();
  let r, events = Trace.capture f in
  let counters = Metrics.snapshot () in
  Metrics.disable ();
  (r, events, counters)

(* ---- span properties ---- *)

type tree = Node of tree list

let rec tree_size (Node cs) =
  1 + List.fold_left (fun a c -> a + tree_size c) 0 cs

let rec run_tree prefix (Node children) =
  List.iteri
    (fun k sub ->
      let name = Printf.sprintf "%s.%d" prefix k in
      Trace.with_span ~cat:"test" name (fun () -> run_tree name sub))
    children

(* Spans are recorded at completion, so the event buffer is in
   completion order: a parent always appears after all of its
   children.  Walking that order with a pending-children list checks
   the stack discipline without relying on strict timestamp ordering —
   with the µs-resolution clock, nested spans routinely tie, so
   containment only has to hold non-strictly. *)
let span_nesting (t : tree) =
  let (), events, _ = captured (fun () -> run_tree "t" t) in
  let spans =
    List.filter_map
      (function
        | Trace.Span s -> Some (s.name, s.t_start_ns, s.t_end_ns, s.depth)
        | Trace.Instant _ -> None)
      events
  in
  (* every node except the root produces one span *)
  if List.length spans <> tree_size t - 1 then
    QCheck.Test.fail_reportf "expected %d spans, recorded %d\n%s"
      (tree_size t - 1) (List.length spans) Helpers.repro_line;
  List.iter
    (fun (name, t0, t1, depth) ->
      if t1 < t0 then
        QCheck.Test.fail_reportf "span %s has negative duration\n%s" name
          Helpers.repro_line;
      if depth < 0 then
        QCheck.Test.fail_reportf "span %s has negative depth\n%s" name
          Helpers.repro_line)
    spans;
  (* completion-order bracket check: when a span at depth d completes,
     every not-yet-attached deeper span must be its child — depth
     exactly d+1, name prefixed by the parent's, interval contained. *)
  let pending = ref [] in
  List.iter
    (fun (name, t0, t1, depth) ->
      let children, rest =
        List.partition (fun (_, _, _, d) -> d > depth) !pending
      in
      List.iter
        (fun (cname, c0, c1, cdepth) ->
          if cdepth <> depth + 1 then
            QCheck.Test.fail_reportf
              "span %s (depth %d) left dangling under %s (depth %d)\n%s" cname
              cdepth name depth Helpers.repro_line;
          let plen = String.length name in
          if
            String.length cname <= plen
            || String.sub cname 0 (plen + 1) <> name ^ "."
          then
            QCheck.Test.fail_reportf "span %s is not a child of %s\n%s" cname
              name Helpers.repro_line;
          if not (t0 <= c0 && c1 <= t1) then
            QCheck.Test.fail_reportf
              "child %s [%d,%d] escapes parent %s [%d,%d]\n%s" cname c0 c1 name
              t0 t1 Helpers.repro_line)
        children;
      pending := (name, t0, t1, depth) :: rest)
    spans;
  (* whatever is left unattached must be the top-level spans *)
  List.iter
    (fun (name, _, _, depth) ->
      if depth <> 0 then
        QCheck.Test.fail_reportf "span %s (depth %d) never found a parent\n%s"
          name depth Helpers.repro_line)
    !pending;
  true

let spans_on_exception () =
  let (), events, _ =
    captured (fun () ->
        match
          Trace.with_span ~cat:"test" "outer" (fun () ->
              Trace.with_span ~cat:"test" "inner" (fun () -> failwith "boom"))
        with
        | () -> Alcotest.fail "expected the exception to propagate"
        | exception Failure _ -> ())
  in
  let names =
    List.filter_map (function Trace.Span s -> Some s.name | _ -> None) events
  in
  Alcotest.(check (list string))
    "both spans recorded despite the raise" [ "inner"; "outer" ] names;
  List.iter
    (fun ev ->
      match Trace.duration_ns ev with
      | Some d -> Alcotest.(check bool) "non-negative duration" true (d >= 0)
      | None -> ())
    events

let disabled_records_nothing () =
  Trace.reset ();
  Trace.disable ();
  Metrics.disable ();
  Trace.with_span "quiet" (fun () -> Trace.instant "nothing");
  Metrics.bumpn "test/quiet";
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "no counts" 0 (Metrics.get "test/quiet")

let subscriber_hook () =
  Trace.reset ();
  let seen = ref [] in
  let id = Trace.subscribe (fun ev -> seen := Trace.name ev :: !seen) in
  let (), _, _ =
    captured (fun () ->
        Trace.with_span "sub.span" (fun () -> Trace.instant "sub.instant"))
  in
  Trace.unsubscribe id;
  let (), _, _ = captured (fun () -> Trace.instant "after.unsub") in
  Alcotest.(check (list string))
    "subscriber saw exactly the events while registered"
    [ "sub.instant"; "sub.span" ]
    (List.rev !seen)

(* ---- counter consistency against the executor ---- *)

let get counters n = try List.assoc n counters with Not_found -> 0

let row_invariant () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  (* pin the measured kernel fallback off: this test asserts the exact
     row-class split, which the adaptive choice would perturb *)
  let opts =
    C.Options.with_kernel_measure false (C.Options.opt_vec ~estimates:env ())
  in
  let _, _, counters = captured (fun () -> Helpers.run_app app opts env) in
  let kernel = get counters "exec/rows_kernel"
  and closure = get counters "exec/rows_closure"
  and cond = get counters "exec/rows_cond"
  and total = get counters "exec/rows_total" in
  Alcotest.(check bool) "some rows ran" true (total > 0);
  Alcotest.(check int) "kernel + closure + cond = total" total
    (kernel + closure + cond);
  (* opt_vec splits cases and compiles kernels: every row goes through
     a compiled kernel *)
  Alcotest.(check int) "all rows via kernels" total kernel;
  Alcotest.(check bool) "kernels were compiled" true
    (get counters "exec/kernels_compiled" > 0)

let rows_without_kernels () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts =
    { (C.Options.opt ~estimates:env ()) with C.Options.kernels = false }
  in
  let _, _, counters = captured (fun () -> Helpers.run_app app opts env) in
  Alcotest.(check bool) "some rows ran" true
    (get counters "exec/rows_total" > 0);
  Alcotest.(check int) "no kernels: closure and cond rows only"
    (get counters "exec/rows_total")
    (get counters "exec/rows_closure" + get counters "exec/rows_cond");
  Alcotest.(check int) "no kernels compiled" 0
    (get counters "exec/kernels_compiled")

(* tiles executed == planned tile counts, per tiling strategy *)
let tiles_match_plan mode () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts =
    { (C.Options.opt ~estimates:env ()) with C.Options.tiling = mode }
  in
  let (plan, _res), _, counters =
    captured (fun () -> Helpers.run_app app opts env)
  in
  let planned = Rt.Executor.tile_counts plan env in
  Alcotest.(check bool) "plan has tiled groups" true (planned <> []);
  List.iter
    (fun (k, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "group %d tiles" k)
        expected
        (get counters (Printf.sprintf "exec/group%d/tiles" k)))
    planned

let tiles_match_plan_parallel () =
  (* the counters are atomics: totals must agree with the plan
     regardless of how tiles are distributed over worker domains *)
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts = C.Options.opt_vec ~workers:4 ~estimates:env () in
  let (plan, _res), _, counters =
    captured (fun () -> Helpers.run_app app opts env)
  in
  List.iter
    (fun (k, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "group %d tiles (4 workers)" k)
        expected
        (get counters (Printf.sprintf "exec/group%d/tiles" k)))
    (Rt.Executor.tile_counts plan env);
  let pool_tasks =
    List.fold_left
      (fun acc (n, v) ->
        if String.length n > 5 && String.sub n 0 5 = "pool/" then acc + v
        else acc)
      0 counters
  in
  Alcotest.(check bool) "pool task counters recorded" true (pool_tasks > 0)

(* ---- Chrome JSON: schema round trip (acceptance criterion) ---- *)

let chrome_roundtrip () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let pipe = Pipeline.build ~outputs:app.outputs in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
      pipe.Pipeline.images
  in
  let report : Rt.Profile.report =
    Rt.Profile.run
      ~opts:(C.Options.opt_vec ~estimates:env ())
      ~outputs:app.outputs ~env ~images
  in
  (* 1. the emitted trace is schema-valid *)
  (match Trace.validate_chrome (Rt.Profile.to_chrome_json report) with
  | Ok n ->
    Alcotest.(check bool) "trace has events" true (n > 0);
    Alcotest.(check int) "every event serialized" (List.length report.events) n
  | Error e -> Alcotest.failf "trace JSON fails schema check: %s" e);
  (* 2. per-group tile counts in the trace match the compiled plan *)
  Alcotest.(check bool) "harris has tiled groups" true (report.tiles <> []);
  List.iter
    (fun (k, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "profile group %d tiles" k)
        expected
        (get report.counters (Printf.sprintf "exec/group%d/tiles" k)))
    report.tiles;
  (* 3. every compiler phase and the executor appear as spans *)
  let span_names =
    List.filter_map
      (function Trace.Span s -> Some s.name | _ -> None)
      report.events
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) ("span " ^ phase) true (List.mem phase span_names))
    [
      "compile"; "pipeline.build"; "bounds_check"; "inline"; "grouping";
      "tiling"; "exec.run";
    ];
  Alcotest.(check bool) "non-negative wall time" true (report.wall_ms >= 0.)

let file_roundtrip () =
  (* the CLI writes through the same emitter; pin the file round trip
     with names that need escaping *)
  let (), events, _ =
    captured (fun () ->
        Trace.with_span ~cat:"t" "weird\"name\n\\x"
          ~args:[ ("k\"", "v\t\165") ]
          (fun () -> Trace.instant ~cat:"t" "i"))
  in
  Alcotest.(check int) "two events captured" 2 (List.length events);
  let file = Filename.temp_file "pm_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Trace.write_chrome_json file events;
      let ic = open_in_bin file in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Trace.validate_chrome src with
      | Ok k -> Alcotest.(check int) "both events validate" 2 k
      | Error e -> Alcotest.failf "escaped JSON fails validation: %s" e)

let parser_negative () =
  let bad =
    [
      "";
      "{";
      "{\"traceEvents\":}";
      "[1,2,3]";
      "{\"traceEvents\":[{\"name\":1}]}";
      (* dur missing for a complete event *)
      "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0}]}";
      (* unknown phase *)
      "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"Z\",\"ts\":0,\"pid\":1,\"tid\":0}]}";
      (* negative timestamp *)
      "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":-5,\"dur\":1,\"pid\":1,\"tid\":0}]}";
      (* negative duration *)
      "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\"dur\":-1,\"pid\":1,\"tid\":0}]}";
    ]
  in
  List.iter
    (fun src ->
      match Trace.validate_chrome src with
      | Ok _ -> Alcotest.failf "accepted malformed trace %S" src
      | Error _ -> ())
    bad

let parser_positive () =
  (match Trace.parse_json "{\"a\":[1,true,null,\"x\\n\"],\"b\":-2.5e3}" with
  | Ok
      (Trace.Obj
         [
           ( "a",
             Trace.Arr
               [ Trace.Num 1.; Trace.Bool true; Trace.Null; Trace.Str "x\n" ]
           );
           ("b", Trace.Num (-2500.));
         ]) -> ()
  | Ok _ -> Alcotest.fail "parsed to the wrong value"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Trace.parse_json "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ()

(* ---- metrics registry ---- *)

let metrics_basics () =
  Metrics.reset ();
  Metrics.enable ();
  let c = Metrics.counter "test/m" in
  Metrics.bump c;
  Metrics.add c 4;
  Metrics.bumpn "test/m";
  Alcotest.(check int) "accumulated" 6 (Metrics.get "test/m");
  Alcotest.(check bool) "snapshot contains it" true
    (List.mem ("test/m", 6) (Metrics.snapshot ()));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.get "test/m");
  Metrics.bump c;
  Alcotest.(check int) "handle survives reset" 1 (Metrics.get "test/m");
  Metrics.disable ();
  Metrics.bump c;
  Alcotest.(check int) "disabled bump is a no-op" 1 (Metrics.get "test/m")

(* Gauges rise and fall while their peak watermark only ratchets up;
   both show in snapshots and both zero on reset. *)
let gauge_basics () =
  Metrics.reset ();
  Metrics.enable ();
  let g = Metrics.gauge "test/depth" in
  Metrics.gauge_add g 3;
  Metrics.gauge_add g 2;
  Metrics.gauge_addn "test/depth" (-4);
  Alcotest.(check int) "level tracks adds" 1 (Metrics.gauge_value g);
  Alcotest.(check int) "peak is the high-water mark" 5
    (Metrics.gauge_peak g);
  Metrics.gauge_set g 4;
  Alcotest.(check int) "set replaces the level" 4 (Metrics.gauge_value g);
  Alcotest.(check int) "peak never falls" 5 (Metrics.gauge_peak g);
  Metrics.gauge_setn "test/depth" 9;
  Alcotest.(check int) "setn ratchets the peak" 9 (Metrics.gauge_peak g);
  (* get resolves gauges and their _peak watermarks by name *)
  Alcotest.(check int) "get reads the gauge" 9 (Metrics.get "test/depth");
  Alcotest.(check int) "get reads the peak" 9 (Metrics.get "test/depth_peak");
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "snapshot has the gauge" true
    (List.mem ("test/depth", 9) snap);
  Alcotest.(check bool) "snapshot has the watermark" true
    (List.mem ("test/depth_peak", 9) snap);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes the level" 0 (Metrics.gauge_value g);
  Alcotest.(check int) "reset zeroes the peak" 0 (Metrics.gauge_peak g);
  Metrics.disable ();
  Metrics.gauge_add g 7;
  Metrics.gauge_setn "test/depth" 7;
  Alcotest.(check int) "disabled updates are no-ops" 0
    (Metrics.gauge_value g);
  Alcotest.(check int) "disabled updates leave the peak" 0
    (Metrics.gauge_peak g)

(* ---- suite ---- *)

let gen_tree =
  QCheck.Gen.(
    sized_size (int_range 0 20)
    @@ fix (fun self n ->
           if n <= 0 then return (Node [])
           else
             let* width = int_range 1 3 in
             let* cs = list_repeat width (self (n / (width + 1))) in
             return (Node cs)))

let arb_tree =
  QCheck.make
    ~print:(fun t ->
      Printf.sprintf "tree of %d nodes\n%s" (tree_size t) Helpers.repro_line)
    gen_tree

let suite =
  ( "trace",
    [
      Alcotest.test_case "metrics counter basics" `Quick metrics_basics;
      Alcotest.test_case "metrics gauge basics" `Quick gauge_basics;
      Alcotest.test_case "disabled path records nothing" `Quick
        disabled_records_nothing;
      Alcotest.test_case "subscriber hook" `Quick subscriber_hook;
      Alcotest.test_case "spans survive exceptions" `Quick spans_on_exception;
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"span nesting keeps stack discipline" ~count:30
           arb_tree span_nesting);
      Alcotest.test_case "row counters are consistent" `Quick row_invariant;
      Alcotest.test_case "rows fall back without kernels" `Quick
        rows_without_kernels;
      Alcotest.test_case "tiles match plan (overlap)" `Quick
        (tiles_match_plan C.Options.Overlap);
      Alcotest.test_case "tiles match plan (parallelogram)" `Quick
        (tiles_match_plan C.Options.Parallelogram);
      Alcotest.test_case "tiles match plan (split)" `Quick
        (tiles_match_plan C.Options.Split);
      Alcotest.test_case "tiles match plan (4 workers)" `Quick
        tiles_match_plan_parallel;
      Alcotest.test_case "profile trace-json round trip" `Quick
        chrome_roundtrip;
      Alcotest.test_case "escaped names round trip via file" `Quick
        file_roundtrip;
      Alcotest.test_case "schema check rejects malformed traces" `Quick
        parser_negative;
      Alcotest.test_case "mini JSON parser" `Quick parser_positive;
    ] )
