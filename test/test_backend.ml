(* Compiled-C backend: toolchain discovery and the POLYMAGE_CC
   override, raw-blob round trips, artifact-cache semantics (hit,
   corruption, LRU eviction, artifact kinds), the cross-backend
   differential suites (subprocess and dlopen tiers) over every app,
   the warm-cache no-recompile/no-spawn guarantees, the tiered-auto
   hot swap, and the degradation ladder. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Cgen = Polymage_codegen.Cgen
module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Toolchain = Polymage_backend.Toolchain
module Rawio = Polymage_backend.Rawio
module Cache = Polymage_backend.Cache
module Backend = Polymage_backend.Backend
module Exec_tier = Polymage_backend.Exec_tier

let have_cc = lazy (Toolchain.available ())

(* A fresh directory name under the temp root; the cache creates it. *)
let fresh_dir () =
  let d = Filename.temp_file "pm_cache" "" in
  Sys.remove d;
  d

let plan_for ?(opts = fun env -> C.Options.opt_vec ~estimates:env ())
    name =
  let app = Apps.find name in
  let env = app.App.small_env in
  let plan = C.Compile.run (opts env) ~outputs:app.App.outputs in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.App.fill env im)))
      plan.C.Plan.pipe.Pipeline.images
  in
  (plan, env, images)

(* ---- toolchain ---- *)

let toolchain_probe_and_override () =
  if not (Lazy.force have_cc) then ()
  else begin
    let tc = Toolchain.get () in
    Alcotest.(check bool) "command nonempty" true
      (String.length tc.Toolchain.cc > 0);
    Alcotest.(check bool) "version nonempty" true
      (String.length tc.Toolchain.version > 0);
    Alcotest.(check bool) "flags nonempty" true
      (String.length tc.Toolchain.flags > 0);
    (* A broken POLYMAGE_CC is the only candidate: no compiler.
       putenv cannot unset, so restore by naming the real compiler —
       the probe is memoized per POLYMAGE_CC value. *)
    Fun.protect
      ~finally:(fun () -> Unix.putenv "POLYMAGE_CC" tc.Toolchain.cc)
      (fun () ->
        Unix.putenv "POLYMAGE_CC" "/nonexistent/pm-no-such-cc";
        Alcotest.(check bool) "broken POLYMAGE_CC means no compiler"
          false (Toolchain.available ());
        match Toolchain.get () with
        | _ -> Alcotest.fail "Toolchain.get should raise without a compiler"
        | exception Err.Polymage_error e ->
          Alcotest.(check bool) "failure is a codegen-phase error" true
            (e.Err.phase = Err.Codegen));
    Alcotest.(check bool) "override naming a real compiler works" true
      (Toolchain.available ())
  end

(* ---- raw blob I/O ---- *)

let rawio_roundtrip_and_validation () =
  let lo = [| -2; 3 |] and dims = [| 4; 5 |] in
  let b = Rt.Buffer.create ~lo ~dims in
  Array.iteri
    (fun i _ -> b.Rt.Buffer.data.(i) <- (float_of_int i *. 0.25) -. 1.5)
    b.Rt.Buffer.data;
  let path = Filename.temp_file "pm_raw" ".raw" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Rawio.write path b;
      let b' = Rawio.read path ~lo ~dims in
      Alcotest.(check bool) "roundtrip is bit-exact" true
        (Rt.Buffer.equal b b');
      Alcotest.(check bool) "lower bound preserved" true
        (b'.Rt.Buffer.lo = lo);
      (* wrong geometry is rejected, not silently reshaped *)
      (match Rawio.read path ~lo ~dims:[| 5; 4 |] with
      | _ -> Alcotest.fail "extent mismatch accepted"
      | exception Err.Polymage_error _ -> ());
      (* truncated payload *)
      let full = (Unix.stat path).Unix.st_size in
      Unix.truncate path (full - 8);
      (match Rawio.read path ~lo ~dims with
      | _ -> Alcotest.fail "truncated blob accepted"
      | exception Err.Polymage_error _ -> ());
      (* corrupted magic *)
      Rawio.write path b;
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      match Rawio.read path ~lo ~dims with
      | _ -> Alcotest.fail "bad magic accepted"
      | exception Err.Polymage_error _ -> ())

(* ---- cache unit tests ---- *)

let store_bytes ?kind ?entry dir key n =
  Cache.store ?kind ?entry ~dir ~key
    ~build:(fun p ->
      let oc = open_out p in
      output_string oc (String.make n 'x');
      close_out oc)
    ()

let cache_hit_and_corruption () =
  let dir = fresh_dir () in
  let k = Cache.key ~tag:"" ~cc:"cc" ~version:"v1" ~flags:"-O3" ~source:"src" in
  let k' = Cache.key ~tag:"" ~cc:"cc" ~version:"v1" ~flags:"-O3" ~source:"other" in
  Alcotest.(check bool) "key depends on the source" true (k <> k');
  Alcotest.(check (option string)) "empty cache misses" None
    (Cache.lookup ~dir k);
  let exe = store_bytes dir k 64 in
  Alcotest.(check (option string)) "stored entry hits" (Some exe)
    (Cache.lookup ~dir k);
  (* truncated artifact: size disagrees with the meta => corrupt,
     discarded, miss *)
  Unix.truncate exe 10;
  Alcotest.(check (option string)) "truncated entry misses" None
    (Cache.lookup ~dir k);
  Alcotest.(check int) "corrupt entry was removed" 0
    (fst (Cache.stats dir));
  (* the crash window leaves an exe without meta: also corrupt *)
  let exe = store_bytes dir k 64 in
  Sys.remove (Filename.concat dir (k ^ ".meta"));
  Alcotest.(check (option string)) "meta-less entry misses" None
    (Cache.lookup ~dir k);
  Alcotest.(check bool) "meta-less exe was removed" false
    (Sys.file_exists exe)

let cache_lru_eviction () =
  let dir = fresh_dir () in
  let key i =
    Cache.key ~tag:"" ~cc:"cc" ~version:"v" ~flags:"-O" ~source:(string_of_int i)
  in
  let k1 = key 1 and k2 = key 2 and k3 = key 3 in
  List.iter (fun k -> ignore (store_bytes dir k 1000)) [ k1; k2; k3 ];
  (* each entry is ~1010 bytes (exe + meta line) *)
  let set_age k age =
    let t = Unix.gettimeofday () -. age in
    Unix.utimes (Cache.exe_path ~dir k) t t
  in
  set_age k1 300.;
  set_age k2 200.;
  set_age k3 100.;
  let n = Cache.evict ~max_bytes:2500 dir in
  Alcotest.(check int) "one eviction reaches the bound" 1 n;
  Alcotest.(check (option string)) "oldest entry went first" None
    (Cache.lookup ~dir k1);
  Alcotest.(check bool) "newer entries survive" true
    (Cache.lookup ~dir k2 <> None && Cache.lookup ~dir k3 <> None);
  (* that lookup of k2 touched it: k3 is now the LRU entry *)
  set_age k3 100.;
  ignore (Cache.lookup ~dir k2);
  let n = Cache.evict ~max_bytes:1500 dir in
  Alcotest.(check int) "one more eviction" 1 n;
  Alcotest.(check (option string)) "untouched entry evicted" None
    (Cache.lookup ~dir k3);
  Alcotest.(check bool) "recently used entry survives" true
    (Cache.lookup ~dir k2 <> None);
  (* [keep] protects the entry just stored even past the bound *)
  let n = Cache.evict ~max_bytes:0 ~keep:k2 dir in
  Alcotest.(check int) "keep wins over the bound" 0 n;
  Alcotest.(check bool) "kept entry still present" true
    (Cache.lookup ~dir k2 <> None)

(* Artifact kinds: shared objects live beside executables with their
   entry symbol in the meta; format-1 metas (pre-.so) stay usable. *)
let cache_kinds_and_meta_compat () =
  let dir = fresh_dir () in
  let k =
    Cache.key ~tag:"" ~cc:"cc" ~version:"v" ~flags:"-O -shared -fPIC"
      ~source:"so-src"
  in
  let so = store_bytes ~kind:Cache.So ~entry:"polymage_run" dir k 128 in
  Alcotest.(check (option string)) "so entry hits under its kind" (Some so)
    (Cache.lookup ~kind:Cache.So ~dir k);
  Alcotest.(check (option string)) "entry symbol recorded"
    (Some "polymage_run")
    (Cache.entry_symbol ~dir k);
  (* asking for the other kind is a plain miss, not corruption *)
  Alcotest.(check (option string)) "exe lookup of an so key misses" None
    (Cache.lookup ~kind:Cache.Exe ~dir k);
  Alcotest.(check (option string)) "the so entry survives that miss"
    (Some so)
    (Cache.lookup ~kind:Cache.So ~dir k);
  Cache.invalidate ~dir k;
  Alcotest.(check (option string)) "invalidate drops any kind" None
    (Cache.lookup ~kind:Cache.So ~dir k);
  (* format-1 meta (size only): reads back as an executable named main *)
  let k2 = Cache.key ~tag:"" ~cc:"cc" ~version:"v" ~flags:"-O" ~source:"exe-src" in
  let exe = store_bytes dir k2 64 in
  let oc = open_out (Filename.concat dir (k2 ^ ".meta")) in
  Printf.fprintf oc "size %d\n" 64;
  close_out oc;
  Alcotest.(check (option string)) "format-1 meta still hits as exe"
    (Some exe) (Cache.lookup ~dir k2);
  Alcotest.(check (option string)) "format-1 entry symbol is main"
    (Some "main")
    (Cache.entry_symbol ~dir k2);
  Alcotest.(check (option string)) "format-1 meta is not an so" None
    (Cache.lookup ~kind:Cache.So ~dir k2);
  (* a meta whose kind disagrees with the artifact suffix on disk is a
     torn store: corrupt, discarded *)
  let k3 = Cache.key ~tag:"" ~cc:"cc" ~version:"v" ~flags:"-O" ~source:"torn" in
  let exe3 = store_bytes dir k3 64 in
  let oc = open_out (Filename.concat dir (k3 ^ ".meta")) in
  Printf.fprintf oc "size %d\nkind so\nentry polymage_run\n" 64;
  close_out oc;
  Alcotest.(check (option string)) "suffix/meta kind disagreement is \
                                    corrupt" None (Cache.lookup ~dir k3);
  Alcotest.(check bool) "corrupt entry was removed" false
    (Sys.file_exists exe3);
  (* eviction walks both kinds *)
  let k4 = Cache.key ~tag:"" ~cc:"cc" ~version:"v" ~flags:"-O" ~source:"so2" in
  ignore (store_bytes ~kind:Cache.So ~entry:"polymage_run" dir k4 1000);
  let n = Cache.evict ~max_bytes:0 dir in
  Alcotest.(check int) "eviction removes entries of both kinds" 2 n;
  Alcotest.(check int) "directory empty after eviction" 0
    (fst (Cache.stats dir))

(* ---- differential: compiled C vs the native executor ---- *)

(* Shared differential tolerance for every compiled tier.  Both sides
   compute in f64, but -O3 -march=native may contract into FMAs, so
   float outputs get a store-rounding tolerance; quantized stores
   (camera_pipe's tone-curve LUT index is floor of a clamped float)
   may legitimately flip by one quantum on a rounding boundary, so
   they allow single-step differences on a small fraction of
   elements. *)
let check_outputs_match ~app ~what native
    (outputs : (Ast.func * Rt.Buffer.t) list) =
  List.iter
    (fun ((f : Ast.func), (cb : Rt.Buffer.t)) ->
      let nb = Rt.Executor.output_buffer native f in
      let maxabs =
        Array.fold_left
          (fun a v -> Float.max a (Float.abs v))
          0. nb.Rt.Buffer.data
      in
      let tol = 1e-6 *. (1. +. maxabs) in
      let d = Rt.Buffer.max_abs_diff nb cb in
      match f.Ast.ftyp with
      | Types.Float | Types.Double ->
        if not (d <= tol) then
          Alcotest.failf "%s/%s: |native - %s| = %g exceeds %g" app
            f.Ast.fname what d tol
      | Types.UChar | Types.Short | Types.Int ->
        if not (d <= 1. +. tol) then
          Alcotest.failf
            "%s/%s: quantized %s outputs differ by %g (> 1 quantum)" app
            f.Ast.fname what d;
        let differing = ref 0 in
        Array.iteri
          (fun i v -> if v <> cb.Rt.Buffer.data.(i) then incr differing)
          nb.Rt.Buffer.data;
        let frac =
          float_of_int !differing
          /. float_of_int (max 1 (Array.length nb.Rt.Buffer.data))
        in
        if frac > 0.01 then
          Alcotest.failf "%s/%s: %.1f%% of quantized %s elements differ"
            app f.Ast.fname (100. *. frac) what)
    outputs

let differential_all_apps () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    List.iter
      (fun (app : App.t) ->
        let plan, env, images = plan_for app.App.name in
        let native = Rt.Executor.run plan env ~images in
        let compiled, (_ : Backend.stats) =
          Backend.run ~cache_dir:dir plan env ~images
        in
        check_outputs_match ~app:app.App.name ~what:"c" native
          compiled.Rt.Executor.outputs)
      (Apps.all ())
  end

(* Same differential over the in-process dlopen tier: the shared
   object is a different emitted entry point and different compile
   flags, so it gets its own full pass over every app.  Each app runs
   twice — the first execution is the quarantine canary (crash-
   isolated child), the second the promoted in-process call — and
   both must match the native executor. *)
let differential_dlopen_all_apps () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    List.iter
      (fun (app : App.t) ->
        let plan, env, images = plan_for app.App.name in
        let native = Rt.Executor.run plan env ~images in
        let compiled, (st1 : Backend.stats) =
          Backend.run_dl ~cache_dir:dir plan env ~images
        in
        Alcotest.(check bool)
          (app.App.name ^ ": first dlopen run is the quarantine canary")
          true st1.Backend.quarantined;
        check_outputs_match ~app:app.App.name ~what:"c-dlopen canary" native
          compiled.Rt.Executor.outputs;
        let compiled2, (st2 : Backend.stats) =
          Backend.run_dl ~cache_dir:dir plan env ~images
        in
        Alcotest.(check bool)
          (app.App.name ^ ": second dlopen run is trusted, in-process")
          false st2.Backend.quarantined;
        check_outputs_match ~app:app.App.name ~what:"c-dlopen trusted" native
          compiled2.Rt.Executor.outputs)
      (Apps.all ())
  end

(* ---- the acceptance criterion: warm cache, no compiler ---- *)

let warm_cache_no_recompile () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    let were_on = Metrics.enabled () in
    Metrics.enable ();
    Metrics.reset ();
    Fun.protect
      ~finally:(fun () ->
        Metrics.reset ();
        if not were_on then Metrics.disable ())
      (fun () ->
        let _, st1 = Backend.run ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "first run is a miss" false
          st1.Backend.cache_hit;
        Alcotest.(check int) "one cache miss" 1
          (Metrics.get "backend/cache_miss");
        Alcotest.(check bool) "compiler invoked on the miss" true
          (Metrics.get "backend/compile_invocations" >= 1);
        Alcotest.(check bool) "compile time recorded" true
          (st1.Backend.compile_ms > 0.);
        Metrics.reset ();
        let _, st2 = Backend.run ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "second run is a hit" true
          st2.Backend.cache_hit;
        Alcotest.(check int) "one cache hit" 1
          (Metrics.get "backend/cache_hit");
        Alcotest.(check int) "warm run performs no compiler invocation"
          0
          (Metrics.get "backend/compile_invocations");
        Alcotest.check (Alcotest.float 1e-9) "no compile time on a hit"
          0. st2.Backend.compile_ms)
  end

(* The dlopen tier's stronger warm guarantee: a warm run not only
   invokes no compiler, it spawns no subprocess at all — the artifact
   is already loaded in-process and the call is a function call. *)
let warm_dlopen_no_compile_no_spawn () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    let were_on = Metrics.enabled () in
    Metrics.enable ();
    Metrics.reset ();
    Fun.protect
      ~finally:(fun () ->
        Metrics.reset ();
        if not were_on then Metrics.disable ())
      (fun () ->
        let _, st1 = Backend.run_dl ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "first run is a miss" false
          st1.Backend.cache_hit;
        Alcotest.(check bool) "first run is the quarantine canary" true
          st1.Backend.quarantined;
        Alcotest.(check bool) "the miss spawned the compiler" true
          (Metrics.get "backend/subprocess_spawns" >= 1);
        Alcotest.(check int) "exactly one quarantine run" 1
          (Metrics.get "backend/quarantine_runs");
        Alcotest.(check int) "the clean canary run promoted the artifact"
          1
          (Metrics.get "backend/promotions");
        Alcotest.(check int)
          "quarantined artifact is never loaded in-process" 0
          (Metrics.get "backend/dl_loads");
        Metrics.reset ();
        let _, st2 = Backend.run_dl ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "second run is a hit" true
          st2.Backend.cache_hit;
        Alcotest.(check bool) "second run is trusted, not quarantined"
          false st2.Backend.quarantined;
        Alcotest.(check int) "warm dlopen run invokes no compiler" 0
          (Metrics.get "backend/compile_invocations");
        Alcotest.(check int) "warm dlopen run spawns no subprocess" 0
          (Metrics.get "backend/subprocess_spawns");
        Alcotest.(check bool) "the trusted artifact was loaded" true
          (Metrics.get "backend/dl_loads" >= 1);
        Alcotest.(check bool) "the warm run went through the loaded \
                               artifact" true
          (Metrics.get "backend/dl_calls" >= 1);
        Metrics.reset ();
        (* third run: the artifact is already in the dlopen registry —
           zero spawns AND zero loads, a plain function call *)
        let _, st3 = Backend.run_dl ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "third run is a hit" true
          st3.Backend.cache_hit;
        Alcotest.(check int) "hot dlopen run spawns no subprocess" 0
          (Metrics.get "backend/subprocess_spawns");
        Alcotest.(check int) "hot dlopen run loads nothing" 0
          (Metrics.get "backend/dl_loads");
        Alcotest.(check bool) "hot run is an in-process call" true
          (Metrics.get "backend/dl_calls" >= 1))
  end

(* ---- tiered auto: serve immediately, hot-swap when the .so lands ---- *)

let auto_hot_swap () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    let native = Rt.Executor.run plan env ~images in
    let a = Exec_tier.auto_start ~cache_dir:dir plan in
    (* Serve while the shared object may still be compiling: whichever
       tier answers must produce correct results — the caller never
       observes a gap or a wrong answer around the swap. *)
    let (r1, _), degr1, served1 = Exec_tier.auto_run a env ~images in
    Alcotest.(check bool) "first call served by a real tier" true
      (List.mem served1 [ "native"; "c-dlopen" ]);
    Alcotest.(check int) "no degradations while serving" 0
      (List.length degr1);
    check_outputs_match ~app:"harris" ~what:("auto/" ^ served1) native
      r1.Rt.Executor.outputs;
    (* After the background compile lands the next call hot-swaps to
       the shared object. *)
    Exec_tier.auto_await a;
    Alcotest.(check string) "background compile finished" "ready"
      (Exec_tier.auto_state a);
    let (r2, st2), degr2, served2 = Exec_tier.auto_run a env ~images in
    Alcotest.(check string) "hot-swapped to the shared object" "c-dlopen"
      served2;
    Alcotest.(check bool) "swapped call carries backend stats" true
      (st2 <> None);
    Alcotest.(check int) "no degradations after the swap" 0
      (List.length degr2);
    check_outputs_match ~app:"harris" ~what:"auto/c-dlopen" native
      r2.Rt.Executor.outputs
  end

(* ---- dlopen fault on a trusted artifact recovers in-tier ---- *)

let dlopen_fault_recovers_in_tier () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    (* Warm to Trusted: first run is the quarantine canary. *)
    let _, (st0 : Backend.stats) =
      Backend.run_dl ~cache_dir:dir plan env ~images
    in
    Alcotest.(check bool) "pre-warm run was the canary" true
      st0.Backend.quarantined;
    let were_on = Metrics.enabled () in
    Metrics.enable ();
    Metrics.reset ();
    Rt.Fault.arm ~site:"dlopen" ~seed:0;
    Fun.protect
      ~finally:(fun () ->
        Rt.Fault.disarm ();
        if not were_on then Metrics.disable ())
      (fun () ->
        (* The trusted in-process load blows up; the artifact is
           treated as suspect, invalidated, rebuilt, and re-proven by
           a fresh canary — all inside the c-dlopen tier, so the
           ladder never falls. *)
        let (result, st), degr =
          Exec_tier.run_safe ~cache_dir:dir Exec_tier.C_dlopen plan env
            ~images
        in
        Alcotest.(check int) "no degradation: recovery is in-tier" 0
          (List.length degr);
        (match st with
        | None -> Alcotest.fail "expected backend stats"
        | Some st ->
          Alcotest.(check bool) "recovery re-ran the quarantine canary"
            true st.Backend.quarantined);
        Alcotest.(check bool) "the bad load marked the entry corrupt"
          true
          (Metrics.get "backend/cache_corrupt" >= 1);
        Alcotest.(check bool) "the rebuilt artifact was re-quarantined"
          true
          (Metrics.get "backend/quarantine_runs" >= 1);
        let native = Rt.Executor.run plan env ~images in
        check_outputs_match ~app:"harris" ~what:"recovered c-dlopen"
          native result.Rt.Executor.outputs)
  end

(* ---- cached artifact that will not execute ---- *)

let broken_artifact_recovers () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    (* simd off so the key below (legacy flags, empty tag, scalar
       source) is exactly what the backend computes for this plan *)
    let plan, env, images =
      plan_for
        ~opts:(fun env ->
          C.Options.with_simd C.Options.Simd_off
            (C.Options.opt_vec ~estimates:env ()))
        "harris"
    in
    (* plant a valid-looking cache entry under the exact key the
       backend will compute: it runs but exits non-zero *)
    let tc = Toolchain.get () in
    let key =
      Cache.key ~tag:"" ~cc:tc.Toolchain.cc ~version:tc.Toolchain.version
        ~flags:tc.Toolchain.flags
        ~source:(Cgen.emit_raw_main plan)
    in
    ignore
      (Cache.store ~dir ~key
         ~build:(fun p ->
           let oc = open_out p in
           output_string oc "#!/bin/sh\nexit 7\n";
           close_out oc;
           Unix.chmod p 0o755)
         ());
    let compiled, st = Backend.run ~cache_dir:dir plan env ~images in
    Alcotest.(check bool) "entry was invalidated and rebuilt" false
      st.Backend.cache_hit;
    Alcotest.(check bool) "rebuild paid a compile" true
      (st.Backend.compile_ms > 0.);
    let native = Rt.Executor.run plan env ~images in
    List.iter
      (fun ((f : Ast.func), cb) ->
        let nb = Rt.Executor.output_buffer native f in
        Alcotest.(check bool)
          ("recovered output matches native: " ^ f.Ast.fname)
          true
          (Rt.Buffer.max_abs_diff nb cb <= 1e-6))
      compiled.Rt.Executor.outputs
  end

(* ---- degradation ladder ---- *)

let run_safe_degrades_to_native () =
  if not (Lazy.force have_cc) then ()
  else begin
    let tc = Toolchain.get () in
    let plan, env, images = plan_for "harris" in
    let (result, st), degr =
      Fun.protect
        ~finally:(fun () -> Unix.putenv "POLYMAGE_CC" tc.Toolchain.cc)
        (fun () ->
          Unix.putenv "POLYMAGE_CC" "/nonexistent/pm-no-such-cc";
          Backend.run_safe ~cache_dir:(fresh_dir ()) plan env ~images)
    in
    Alcotest.(check bool) "no backend stats after fallback" true
      (st = None);
    (match degr with
    | { Rt.Executor.rung = "c-subprocess"; error } :: _ ->
      Alcotest.(check bool) "degradation carries the codegen error"
        true
        (error.Err.phase = Err.Codegen)
    | _ -> Alcotest.fail "expected a c-subprocess degradation rung");
    (* the fallback result is the native executor's, bit for bit *)
    let native = Rt.Executor.run plan env ~images in
    List.iter
      (fun ((f : Ast.func), b) ->
        Alcotest.(check bool)
          ("fallback output matches native: " ^ f.Ast.fname)
          true
          (Rt.Buffer.equal (Rt.Executor.output_buffer native f) b))
      result.Rt.Executor.outputs
  end

(* ---- suite ---- *)

let suite =
  ( "backend",
    [
      Alcotest.test_case "toolchain probe and POLYMAGE_CC override"
        `Quick toolchain_probe_and_override;
      Alcotest.test_case "raw blobs: roundtrip and validation" `Quick
        rawio_roundtrip_and_validation;
      Alcotest.test_case "cache: hit, truncation, torn store" `Quick
        cache_hit_and_corruption;
      Alcotest.test_case "cache: LRU eviction order and touch" `Quick
        cache_lru_eviction;
      Alcotest.test_case "cache: artifact kinds and meta back-compat"
        `Quick cache_kinds_and_meta_compat;
      Alcotest.test_case "differential: every app, C vs native" `Slow
        differential_all_apps;
      Alcotest.test_case "differential: every app, dlopen vs native" `Slow
        differential_dlopen_all_apps;
      Alcotest.test_case "warm cache performs no compiler invocation"
        `Quick warm_cache_no_recompile;
      Alcotest.test_case "warm dlopen run: no compile, no subprocess"
        `Quick warm_dlopen_no_compile_no_spawn;
      Alcotest.test_case "auto tier serves immediately and hot-swaps"
        `Quick auto_hot_swap;
      Alcotest.test_case "dlopen fault on trusted artifact recovers \
                          in-tier" `Quick dlopen_fault_recovers_in_tier;
      Alcotest.test_case "cached artifact that fails to run recovers"
        `Quick broken_artifact_recovers;
      Alcotest.test_case "run_safe degrades to the native executor"
        `Quick run_safe_degrades_to_native;
    ] )
