(* Compiled-C backend: toolchain discovery and the POLYMAGE_CC
   override, raw-blob round trips, artifact-cache semantics (hit,
   corruption, LRU eviction), the cross-backend differential suite
   over every app, the warm-cache no-recompile guarantee, and the
   c-backend degradation rung. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Cgen = Polymage_codegen.Cgen
module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Toolchain = Polymage_backend.Toolchain
module Rawio = Polymage_backend.Rawio
module Cache = Polymage_backend.Cache
module Backend = Polymage_backend.Backend

let have_cc = lazy (Toolchain.available ())

(* A fresh directory name under the temp root; the cache creates it. *)
let fresh_dir () =
  let d = Filename.temp_file "pm_cache" "" in
  Sys.remove d;
  d

let plan_for ?(opts = fun env -> C.Options.opt_vec ~estimates:env ())
    name =
  let app = Apps.find name in
  let env = app.App.small_env in
  let plan = C.Compile.run (opts env) ~outputs:app.App.outputs in
  let images =
    List.map
      (fun im -> (im, Rt.Buffer.of_image im env (app.App.fill env im)))
      plan.C.Plan.pipe.Pipeline.images
  in
  (plan, env, images)

(* ---- toolchain ---- *)

let toolchain_probe_and_override () =
  if not (Lazy.force have_cc) then ()
  else begin
    let tc = Toolchain.get () in
    Alcotest.(check bool) "command nonempty" true
      (String.length tc.Toolchain.cc > 0);
    Alcotest.(check bool) "version nonempty" true
      (String.length tc.Toolchain.version > 0);
    Alcotest.(check bool) "flags nonempty" true
      (String.length tc.Toolchain.flags > 0);
    (* A broken POLYMAGE_CC is the only candidate: no compiler.
       putenv cannot unset, so restore by naming the real compiler —
       the probe is memoized per POLYMAGE_CC value. *)
    Fun.protect
      ~finally:(fun () -> Unix.putenv "POLYMAGE_CC" tc.Toolchain.cc)
      (fun () ->
        Unix.putenv "POLYMAGE_CC" "/nonexistent/pm-no-such-cc";
        Alcotest.(check bool) "broken POLYMAGE_CC means no compiler"
          false (Toolchain.available ());
        match Toolchain.get () with
        | _ -> Alcotest.fail "Toolchain.get should raise without a compiler"
        | exception Err.Polymage_error e ->
          Alcotest.(check bool) "failure is a codegen-phase error" true
            (e.Err.phase = Err.Codegen));
    Alcotest.(check bool) "override naming a real compiler works" true
      (Toolchain.available ())
  end

(* ---- raw blob I/O ---- *)

let rawio_roundtrip_and_validation () =
  let lo = [| -2; 3 |] and dims = [| 4; 5 |] in
  let b = Rt.Buffer.create ~lo ~dims in
  Array.iteri
    (fun i _ -> b.Rt.Buffer.data.(i) <- (float_of_int i *. 0.25) -. 1.5)
    b.Rt.Buffer.data;
  let path = Filename.temp_file "pm_raw" ".raw" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Rawio.write path b;
      let b' = Rawio.read path ~lo ~dims in
      Alcotest.(check bool) "roundtrip is bit-exact" true
        (Rt.Buffer.equal b b');
      Alcotest.(check bool) "lower bound preserved" true
        (b'.Rt.Buffer.lo = lo);
      (* wrong geometry is rejected, not silently reshaped *)
      (match Rawio.read path ~lo ~dims:[| 5; 4 |] with
      | _ -> Alcotest.fail "extent mismatch accepted"
      | exception Err.Polymage_error _ -> ());
      (* truncated payload *)
      let full = (Unix.stat path).Unix.st_size in
      Unix.truncate path (full - 8);
      (match Rawio.read path ~lo ~dims with
      | _ -> Alcotest.fail "truncated blob accepted"
      | exception Err.Polymage_error _ -> ());
      (* corrupted magic *)
      Rawio.write path b;
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      match Rawio.read path ~lo ~dims with
      | _ -> Alcotest.fail "bad magic accepted"
      | exception Err.Polymage_error _ -> ())

(* ---- cache unit tests ---- *)

let store_bytes dir key n =
  Cache.store ~dir ~key ~build:(fun p ->
      let oc = open_out p in
      output_string oc (String.make n 'x');
      close_out oc)

let cache_hit_and_corruption () =
  let dir = fresh_dir () in
  let k = Cache.key ~cc:"cc" ~version:"v1" ~flags:"-O3" ~source:"src" in
  let k' = Cache.key ~cc:"cc" ~version:"v1" ~flags:"-O3" ~source:"other" in
  Alcotest.(check bool) "key depends on the source" true (k <> k');
  Alcotest.(check (option string)) "empty cache misses" None
    (Cache.lookup ~dir k);
  let exe = store_bytes dir k 64 in
  Alcotest.(check (option string)) "stored entry hits" (Some exe)
    (Cache.lookup ~dir k);
  (* truncated artifact: size disagrees with the meta => corrupt,
     discarded, miss *)
  Unix.truncate exe 10;
  Alcotest.(check (option string)) "truncated entry misses" None
    (Cache.lookup ~dir k);
  Alcotest.(check int) "corrupt entry was removed" 0
    (fst (Cache.stats dir));
  (* the crash window leaves an exe without meta: also corrupt *)
  let exe = store_bytes dir k 64 in
  Sys.remove (Filename.concat dir (k ^ ".meta"));
  Alcotest.(check (option string)) "meta-less entry misses" None
    (Cache.lookup ~dir k);
  Alcotest.(check bool) "meta-less exe was removed" false
    (Sys.file_exists exe)

let cache_lru_eviction () =
  let dir = fresh_dir () in
  let key i =
    Cache.key ~cc:"cc" ~version:"v" ~flags:"-O" ~source:(string_of_int i)
  in
  let k1 = key 1 and k2 = key 2 and k3 = key 3 in
  List.iter (fun k -> ignore (store_bytes dir k 1000)) [ k1; k2; k3 ];
  (* each entry is ~1010 bytes (exe + meta line) *)
  let set_age k age =
    let t = Unix.gettimeofday () -. age in
    Unix.utimes (Cache.exe_path ~dir k) t t
  in
  set_age k1 300.;
  set_age k2 200.;
  set_age k3 100.;
  let n = Cache.evict ~max_bytes:2500 dir in
  Alcotest.(check int) "one eviction reaches the bound" 1 n;
  Alcotest.(check (option string)) "oldest entry went first" None
    (Cache.lookup ~dir k1);
  Alcotest.(check bool) "newer entries survive" true
    (Cache.lookup ~dir k2 <> None && Cache.lookup ~dir k3 <> None);
  (* that lookup of k2 touched it: k3 is now the LRU entry *)
  set_age k3 100.;
  ignore (Cache.lookup ~dir k2);
  let n = Cache.evict ~max_bytes:1500 dir in
  Alcotest.(check int) "one more eviction" 1 n;
  Alcotest.(check (option string)) "untouched entry evicted" None
    (Cache.lookup ~dir k3);
  Alcotest.(check bool) "recently used entry survives" true
    (Cache.lookup ~dir k2 <> None);
  (* [keep] protects the entry just stored even past the bound *)
  let n = Cache.evict ~max_bytes:0 ~keep:k2 dir in
  Alcotest.(check int) "keep wins over the bound" 0 n;
  Alcotest.(check bool) "kept entry still present" true
    (Cache.lookup ~dir k2 <> None)

(* ---- differential: compiled C vs the native executor ---- *)

let differential_all_apps () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    List.iter
      (fun (app : App.t) ->
        let plan, env, images = plan_for app.App.name in
        let native = Rt.Executor.run plan env ~images in
        let compiled, (_ : Backend.stats) =
          Backend.run ~cache_dir:dir plan env ~images
        in
        List.iter
          (fun ((f : Ast.func), (cb : Rt.Buffer.t)) ->
            let nb = Rt.Executor.output_buffer native f in
            let maxabs =
              Array.fold_left
                (fun a v -> Float.max a (Float.abs v))
                0. nb.Rt.Buffer.data
            in
            (* store-rounding tolerance: both sides compute in f64,
               but -O3 -march=native may contract into FMAs *)
            let tol = 1e-6 *. (1. +. maxabs) in
            let d = Rt.Buffer.max_abs_diff nb cb in
            match f.Ast.ftyp with
            | Types.Float | Types.Double ->
              if not (d <= tol) then
                Alcotest.failf "%s/%s: |native - c| = %g exceeds %g"
                  app.App.name f.Ast.fname d tol
            | Types.UChar | Types.Short | Types.Int ->
              (* quantized store: an FMA-level difference landing on a
                 rounding boundary legitimately moves the stored value
                 by one quantum (camera_pipe's tone-curve LUT index is
                 floor of a clamped float) — allow single-step flips on
                 a small fraction of elements *)
              if not (d <= 1. +. tol) then
                Alcotest.failf
                  "%s/%s: quantized outputs differ by %g (> 1 quantum)"
                  app.App.name f.Ast.fname d;
              let differing = ref 0 in
              Array.iteri
                (fun i v ->
                  if v <> cb.Rt.Buffer.data.(i) then incr differing)
                nb.Rt.Buffer.data;
              let frac =
                float_of_int !differing
                /. float_of_int (max 1 (Array.length nb.Rt.Buffer.data))
              in
              if frac > 0.01 then
                Alcotest.failf
                  "%s/%s: %.1f%% of quantized elements differ"
                  app.App.name f.Ast.fname (100. *. frac))
          compiled.Rt.Executor.outputs)
      (Apps.all ())
  end

(* ---- the acceptance criterion: warm cache, no compiler ---- *)

let warm_cache_no_recompile () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    let were_on = Metrics.enabled () in
    Metrics.enable ();
    Metrics.reset ();
    Fun.protect
      ~finally:(fun () ->
        Metrics.reset ();
        if not were_on then Metrics.disable ())
      (fun () ->
        let _, st1 = Backend.run ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "first run is a miss" false
          st1.Backend.cache_hit;
        Alcotest.(check int) "one cache miss" 1
          (Metrics.get "backend/cache_miss");
        Alcotest.(check bool) "compiler invoked on the miss" true
          (Metrics.get "backend/compile_invocations" >= 1);
        Alcotest.(check bool) "compile time recorded" true
          (st1.Backend.compile_ms > 0.);
        Metrics.reset ();
        let _, st2 = Backend.run ~cache_dir:dir plan env ~images in
        Alcotest.(check bool) "second run is a hit" true
          st2.Backend.cache_hit;
        Alcotest.(check int) "one cache hit" 1
          (Metrics.get "backend/cache_hit");
        Alcotest.(check int) "warm run performs no compiler invocation"
          0
          (Metrics.get "backend/compile_invocations");
        Alcotest.check (Alcotest.float 1e-9) "no compile time on a hit"
          0. st2.Backend.compile_ms)
  end

(* ---- cached artifact that will not execute ---- *)

let broken_artifact_recovers () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = fresh_dir () in
    let plan, env, images = plan_for "harris" in
    (* plant a valid-looking cache entry under the exact key the
       backend will compute: it runs but exits non-zero *)
    let tc = Toolchain.get () in
    let key =
      Cache.key ~cc:tc.Toolchain.cc ~version:tc.Toolchain.version
        ~flags:tc.Toolchain.flags
        ~source:(Cgen.emit_raw_main plan)
    in
    ignore
      (Cache.store ~dir ~key ~build:(fun p ->
           let oc = open_out p in
           output_string oc "#!/bin/sh\nexit 7\n";
           close_out oc;
           Unix.chmod p 0o755));
    let compiled, st = Backend.run ~cache_dir:dir plan env ~images in
    Alcotest.(check bool) "entry was invalidated and rebuilt" false
      st.Backend.cache_hit;
    Alcotest.(check bool) "rebuild paid a compile" true
      (st.Backend.compile_ms > 0.);
    let native = Rt.Executor.run plan env ~images in
    List.iter
      (fun ((f : Ast.func), cb) ->
        let nb = Rt.Executor.output_buffer native f in
        Alcotest.(check bool)
          ("recovered output matches native: " ^ f.Ast.fname)
          true
          (Rt.Buffer.max_abs_diff nb cb <= 1e-6))
      compiled.Rt.Executor.outputs
  end

(* ---- degradation ladder ---- *)

let run_safe_degrades_to_native () =
  if not (Lazy.force have_cc) then ()
  else begin
    let tc = Toolchain.get () in
    let plan, env, images = plan_for "harris" in
    let (result, st), degr =
      Fun.protect
        ~finally:(fun () -> Unix.putenv "POLYMAGE_CC" tc.Toolchain.cc)
        (fun () ->
          Unix.putenv "POLYMAGE_CC" "/nonexistent/pm-no-such-cc";
          Backend.run_safe ~cache_dir:(fresh_dir ()) plan env ~images)
    in
    Alcotest.(check bool) "no backend stats after fallback" true
      (st = None);
    (match degr with
    | { Rt.Executor.rung = "c-backend"; error } :: _ ->
      Alcotest.(check bool) "degradation carries the codegen error"
        true
        (error.Err.phase = Err.Codegen)
    | _ -> Alcotest.fail "expected a c-backend degradation rung");
    (* the fallback result is the native executor's, bit for bit *)
    let native = Rt.Executor.run plan env ~images in
    List.iter
      (fun ((f : Ast.func), b) ->
        Alcotest.(check bool)
          ("fallback output matches native: " ^ f.Ast.fname)
          true
          (Rt.Buffer.equal (Rt.Executor.output_buffer native f) b))
      result.Rt.Executor.outputs
  end

(* ---- suite ---- *)

let suite =
  ( "backend",
    [
      Alcotest.test_case "toolchain probe and POLYMAGE_CC override"
        `Quick toolchain_probe_and_override;
      Alcotest.test_case "raw blobs: roundtrip and validation" `Quick
        rawio_roundtrip_and_validation;
      Alcotest.test_case "cache: hit, truncation, torn store" `Quick
        cache_hit_and_corruption;
      Alcotest.test_case "cache: LRU eviction order and touch" `Quick
        cache_lru_eviction;
      Alcotest.test_case "differential: every app, C vs native" `Slow
        differential_all_apps;
      Alcotest.test_case "warm cache performs no compiler invocation"
        `Quick warm_cache_no_recompile;
      Alcotest.test_case "cached artifact that fails to run recovers"
        `Quick broken_artifact_recovers;
      Alcotest.test_case "run_safe degrades to the native executor"
        `Quick run_safe_degrades_to_native;
    ] )
