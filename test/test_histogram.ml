(* The latency histogram: quantile estimates against exact sorted
   quantiles (within the documented bucket error bound), bucket
   invariants, merge associativity up to snapshots, and total-count
   preservation under concurrent recorders. *)
module H = Polymage_util.Histogram

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* Latency-shaped values: mostly small, with octave-spanning spikes so
   every bucket regime (exact sub-[2^m] buckets and log buckets across
   many octaves) gets exercised. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        int_range 0 31;
        int_range 0 1_000;
        int_range 1_000 1_000_000;
        map (fun x -> x * 10_007) (int_range 1 200_000);
      ])

let values_arb =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 300) value_gen)

(* The estimator's own rank definition: the q-quantile of n sorted
   values is element [ceil (q*n)] (1-based), clamped into [1, n]. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let rank = max 1 (min n rank) in
  float_of_int sorted.(rank - 1)

let fill values =
  let h = H.create () in
  List.iter (H.record h) values;
  h

let quantile_props =
  let within_bound values q =
    let h = fill values in
    let eb = H.error_bound h in
    let sorted = Array.of_list values in
    Array.sort compare sorted;
    let ex = exact_quantile sorted q in
    let est = H.quantile (H.snapshot h) q in
    abs_float (est -. ex) <= (eb *. ex) +. 1e-9
  in
  [
    prop "p50 within the error bound" 300 values_arb (fun vs ->
        within_bound vs 0.5);
    prop "p90 within the error bound" 300 values_arb (fun vs ->
        within_bound vs 0.9);
    prop "p99 within the error bound" 300 values_arb (fun vs ->
        within_bound vs 0.99);
    prop "count/sum/min/max are exact" 300 values_arb (fun vs ->
        let h = fill vs in
        H.count h = List.length vs
        && H.sum h = List.fold_left ( + ) 0 vs
        && H.min_value h = List.fold_left min max_int vs
        && H.max_value h = List.fold_left max 0 vs);
    prop "snapshot buckets are disjoint, ascending, and sum to count" 300
      values_arb
      (fun vs ->
        let h = fill vs in
        let s = H.snapshot h in
        let rec ok prev_hi total = function
          | [] -> total = s.H.total
          | (lo, hi, c) :: rest ->
            lo > prev_hi && hi >= lo && c > 0 && ok hi (total + c) rest
        in
        s.H.total = List.length vs && ok (-1) 0 s.H.buckets);
    prop "every value lands in a bucket that contains it" 300 values_arb
      (fun vs ->
        let h = fill vs in
        let s = H.snapshot h in
        List.for_all
          (fun v ->
            List.exists (fun (lo, hi, _) -> lo <= v && v <= hi) s.H.buckets)
          vs);
  ]

let merge_props =
  let arb = QCheck.triple values_arb values_arb values_arb in
  let snap_eq a b =
    let sa = H.snapshot a and sb = H.snapshot b in
    sa.H.total = sb.H.total && sa.H.s_sum = sb.H.s_sum
    && sa.H.s_min = sb.H.s_min && sa.H.s_max = sb.H.s_max
    && sa.H.buckets = sb.H.buckets
  in
  [
    prop "merge is associative up to snapshots" 200 arb (fun (x, y, z) ->
        let a = fill x and b = fill y and c = fill z in
        snap_eq (H.merge (H.merge a b) c) (H.merge a (H.merge b c)));
    prop "merge is commutative up to snapshots" 200
      (QCheck.pair values_arb values_arb)
      (fun (x, y) ->
        let a = fill x and b = fill y in
        snap_eq (H.merge a b) (H.merge b a));
    prop "merge equals recording the concatenation" 200
      (QCheck.pair values_arb values_arb)
      (fun (x, y) ->
        snap_eq (H.merge (fill x) (fill y)) (fill (x @ y)));
  ]

let histogram_units () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (float 0.)) "empty quantile" 0.
    (H.quantile (H.snapshot h) 0.5);
  Alcotest.(check (float 0.)) "empty mean" 0. (H.mean (H.snapshot h));
  H.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (H.min_value h);
  Alcotest.(check int) "clamped value counted" 1 (H.count h);
  H.record h 7;
  (* sub-[2^sub_bits] values are exact: a width-1 bucket's midpoint is
     the value itself *)
  Alcotest.(check (float 0.)) "small values exact" 7.
    (H.quantile (H.snapshot h) 1.0);
  H.reset h;
  Alcotest.(check int) "reset zeroes count" 0 (H.count h);
  Alcotest.(check int) "reset zeroes max" 0 (H.max_value h);
  Alcotest.(check int) "sub_bits clamps high" 8 (H.sub_bits (H.create ~sub_bits:12 ()));
  Alcotest.(check int) "sub_bits clamps low" 1 (H.sub_bits (H.create ~sub_bits:0 ()));
  Alcotest.(check (float 1e-12)) "error bound at default resolution"
    (1. /. 64.)
    (H.error_bound (H.create ()));
  (* max_int must not overflow the bucket index computation *)
  let big = H.create () in
  H.record big max_int;
  Alcotest.(check int) "max_int records" 1 (H.count big);
  Alcotest.(check int) "max_int is the max" max_int (H.max_value big);
  Alcotest.check_raises "merge rejects mismatched resolutions"
    (Invalid_argument "Histogram.merge: sub_bits mismatch (5 vs 3)") (fun () ->
      ignore (H.merge (H.create ()) (H.create ~sub_bits:3 ())))

(* 8 domains hammer one histogram; every record must land in exactly
   one bucket, so once they join the totals are exact. *)
let concurrent_records () =
  let domains = 8 and per_domain = 20_000 in
  let h = H.create () in
  let doms =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* deterministic, domain-distinct values across octaves *)
              H.record h ((i * (d + 1)) land 0xFFFFF)
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "total count preserved under 8 domains"
    (domains * per_domain) (H.count h);
  let s = H.snapshot h in
  Alcotest.(check int) "bucket counts sum to the total"
    (domains * per_domain)
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 s.H.buckets)

let suite =
  ( "histogram",
    [
      Alcotest.test_case "histogram units" `Quick histogram_units;
      Alcotest.test_case "concurrent records preserve the count" `Slow
        concurrent_records;
    ]
    @ quantile_props @ merge_props )
