(* C back end: structural properties of the emitted code (paper
   Fig. 7), compiler syntax acceptance for every app in both
   configurations, and a full compile-run-compare round trip. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module Cgen = Polymage_codegen.Cgen
module Toolchain = Polymage_backend.Toolchain

(* Compiler discovery is shared with the compiled backend and the
   bench harness: one probe, POLYMAGE_CC honored everywhere. *)
let have_cc = lazy (Toolchain.available ())
let cc () = (Toolchain.get ()).Toolchain.cc

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let structure () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts =
    C.Options.with_tile [| 32; 256 |] (C.Options.opt ~estimates:env ())
  in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let src = Cgen.emit plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains src needle))
    [
      "#pragma omp parallel";  (* parallel region around the tiles *)
      "#pragma omp for";  (* parallel tile loop *)
      "#pragma GCC ivdep";  (* unit-stride inner loops (the GCC
                               spelling — plain [#pragma ivdep] is icc
                               syntax that gcc silently ignores) *)
      "double* restrict S_";  (* per-thread scratchpads *)
      "ceild(base";  (* relative tile geometry *)
      "out_harris";  (* live-out returned *)
      "calloc";
    ];
  (* base plan has no scratchpads *)
  let plan_b = C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs in
  let src_b = Cgen.emit plan_b in
  Alcotest.(check bool) "base has no scratchpads" false (contains src_b "double S_")

let syntax_all_apps () =
  if not (Lazy.force have_cc) then ()
  else
    List.iter
      (fun (app : Polymage_apps.App.t) ->
        List.iter
          (fun opts ->
            let plan = C.Compile.run opts ~outputs:app.outputs in
            let src = Cgen.emit plan in
            let tmp = Filename.temp_file "pm_syn" ".c" in
            let oc = open_out tmp in
            output_string oc src;
            close_out oc;
            let rc =
              Sys.command
                (Printf.sprintf "%s -fsyntax-only -std=c99 %s 2>/dev/null"
                   (cc ()) tmp)
            in
            if rc <> 0 then
              Alcotest.failf "%s: generated C rejected by %s (source: %s)"
                app.name (cc ()) tmp;
            Sys.remove tmp)
          [
            C.Options.base ~estimates:app.small_env ();
            C.Options.opt ~estimates:app.small_env ();
          ])
      (Apps.all ())

(* Differential round trip: same simple polynomial input on both
   back ends, checksums must agree to the last bit. *)
let roundtrip name () =
  if not (Lazy.force have_cc) then ()
  else begin
    let app = Apps.find name in
    let env = app.small_env in
    let opts =
      C.Options.with_tile [| 16; 16 |] (C.Options.opt ~estimates:env ())
    in
    let plan = C.Compile.run opts ~outputs:app.outputs in
    let c_fill (im : Ast.image) =
      let n = List.length im.iextents in
      let x = Printf.sprintf "c%d" (max 0 (n - 2)) in
      let y = if n >= 2 then Printf.sprintf "c%d" (n - 1) else "0" in
      let ch = if n >= 3 then "c0" else "0" in
      Printf.sprintf "(double)imod(%s*7 + %s*13 + %s*5, 32) / 8.0" x y ch
    in
    let ocaml_fill (c : int array) =
      let n = Array.length c in
      let x = if n >= 2 then c.(n - 2) else c.(0) in
      let y = if n >= 2 then c.(n - 1) else 0 in
      let ch = if n >= 3 then c.(0) else 0 in
      float_of_int (((x * 7) + (y * 13) + (ch * 5)) mod 32) /. 8.0
    in
    let src = Cgen.emit_with_main plan ~fill:c_fill ~env in
    let tmp = Filename.temp_file "pm_rt" ".c" in
    let oc = open_out tmp in
    output_string oc src;
    close_out oc;
    let exe = tmp ^ ".exe" in
    let rc =
      Sys.command
        (Printf.sprintf "%s -O1 -std=c99 -o %s %s -lm" (cc ()) exe tmp)
    in
    Alcotest.(check int) "cc compiles" 0 rc;
    let outf = tmp ^ ".out" in
    let rc = Sys.command (Printf.sprintf "%s > %s" exe outf) in
    Alcotest.(check int) "pipeline runs" 0 rc;
    let ic = open_in outf in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let images =
      List.map
        (fun im -> (im, Rt.Buffer.of_image im env ocaml_fill))
        plan.pipe.Pipeline.images
    in
    let res = Rt.Executor.run plan env ~images in
    List.iter
      (fun (f, (b : Rt.Buffer.t)) ->
        let sum = Array.fold_left ( +. ) 0. b.Rt.Buffer.data in
        let prefix = f.Ast.fname ^ " " in
        match
          List.find_opt
            (fun l ->
              String.length l > String.length prefix
              && String.sub l 0 (String.length prefix) = prefix)
            !lines
        with
        | None -> Alcotest.fail "missing checksum line"
        | Some l -> (
          match String.split_on_char ' ' l with
          | [ _; n; s ] ->
            Alcotest.(check int) "count" (Rt.Buffer.size b) (int_of_string n);
            let cs = float_of_string s in
            let rel = Float.abs (cs -. sum) /. (Float.abs sum +. 1e-9) in
            Alcotest.(check bool) "checksum matches" true (rel <= 1e-12)
          | _ -> Alcotest.fail "bad checksum line"))
      res.outputs;
    Sys.remove tmp;
    Sys.remove exe;
    Sys.remove outf
  end

let parallelogram_rejected () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let opts =
    { (C.Options.opt ~estimates:env ()) with
      C.Options.tiling = C.Options.Parallelogram }
  in
  let plan = C.Compile.run opts ~outputs:app.outputs in
  match Cgen.emit plan with
  | exception Polymage_util.Err.Polymage_error { phase = Codegen; _ } -> ()
  | _ -> Alcotest.fail "C back end must reject parallelogram plans"

let suite =
  ( "codegen",
    [
      Alcotest.test_case "Fig.7 structure" `Quick structure;
      Alcotest.test_case "parallelogram rejected" `Quick parallelogram_rejected;
      Alcotest.test_case "cc accepts all apps" `Slow syntax_all_apps;
      Alcotest.test_case "roundtrip harris" `Slow (roundtrip "harris");
      Alcotest.test_case "roundtrip camera" `Slow (roundtrip "camera_pipe");
      Alcotest.test_case "roundtrip pyramid" `Slow (roundtrip "pyramid_blend");
      (* bilateral covers reductions in C, local_laplacian covers the
         data-dependent select chains *)
      Alcotest.test_case "roundtrip bilateral" `Slow
        (roundtrip "bilateral_grid");
      Alcotest.test_case "roundtrip local laplacian" `Slow
        (roundtrip "local_laplacian");
    ] )
