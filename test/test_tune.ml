(* Autotuner: the search covers the requested space, returns the best
   sample, and the winning configuration still computes the right
   answer. *)
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module Tune = Polymage_tune.Tune

let tune_harris () =
  let app = Apps.find "harris" in
  let env = app.small_env in
  let plan0 = C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs in
  let images = Helpers.images_for app plan0 env in
  let r =
    Tune.explore ~tiles:[ 8; 32 ] ~thresholds:[ 0.2; 0.5 ] ~workers:2
      ~outputs:app.outputs ~env ~images ()
  in
  Alcotest.(check int) "space size" (2 * 2 * 2) (List.length r.samples);
  Alcotest.(check bool) "best is a sample" true (List.memq r.best r.samples);
  List.iter
    (fun (s : Tune.sample) ->
      match s.status with
      | Tune.Failed e ->
        Alcotest.fail ("unexpected failure: " ^ Polymage_util.Err.to_string e)
      | Tune.Timed t ->
        Alcotest.(check bool) "times positive" true
          (t.time_seq > 0. && t.time_par > 0.);
        Alcotest.(check bool) "best minimizes parallel time" true
          (Tune.time_par r.best <= Some t.time_par))
    r.samples;
  (* winning configuration is still correct *)
  let best = Tune.best_options r ~estimates:env ~workers:1 in
  let rb = Rt.Executor.run plan0 env ~images in
  let plan_best = C.Compile.run best ~outputs:app.outputs in
  let rbest = Rt.Executor.run plan_best env ~images in
  Helpers.check_buffers_equal ~eps:1e-9 "tuned output"
    (Helpers.output_of app rb) (Helpers.output_of app rbest)

let paper_space () =
  Alcotest.(check int) "paper tile menu" 7 (List.length Tune.paper_tiles);
  Alcotest.(check int) "paper thresholds" 3 (List.length Tune.paper_thresholds);
  (* 7^2 * 3 = 147 configurations for a 2-D pipeline, as in §3.8 *)
  Alcotest.(check int) "147 configs"
    147
    (List.length Tune.paper_tiles * List.length Tune.paper_tiles
    * List.length Tune.paper_thresholds)

let suite =
  ( "autotune",
    [
      Alcotest.test_case "paper space" `Quick paper_space;
      Alcotest.test_case "tune harris" `Slow tune_harris;
    ] )
