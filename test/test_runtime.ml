(* Runtime: buffers, the worker pool, and the executor on the core
   computation patterns of paper Table 1 (point-wise, stencil,
   up/downsample are covered by the apps; histogram and time-iterated
   are covered here). *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
open Polymage_dsl.Dsl

let buffer_units () =
  let b = Rt.Buffer.create ~lo:[| 2; -1 |] ~dims:[| 3; 4 |] in
  Rt.Buffer.set b [| 2; -1 |] 1.5;
  Rt.Buffer.set b [| 4; 2 |] 2.5;
  Alcotest.(check (float 0.)) "get lo corner" 1.5 (Rt.Buffer.get b [| 2; -1 |]);
  Alcotest.(check (float 0.)) "get hi corner" 2.5 (Rt.Buffer.get b [| 4; 2 |]);
  Alcotest.(check int) "size" 12 (Rt.Buffer.size b);
  Alcotest.(check bool) "oob raises" true
    (match Rt.Buffer.get b [| 5; 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "rank mismatch raises" true
    (match Rt.Buffer.get b [| 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let c = Rt.Buffer.create ~lo:[| 2; -1 |] ~dims:[| 3; 4 |] in
  Alcotest.(check bool) "not equal" false (Rt.Buffer.equal b c);
  Rt.Buffer.set c [| 2; -1 |] 1.5;
  Rt.Buffer.set c [| 4; 2 |] 2.5;
  Alcotest.(check bool) "equal" true (Rt.Buffer.equal b c)

let pool_units () =
  Rt.Pool.with_pool 4 (fun p ->
      Alcotest.(check int) "size" 4 (Rt.Pool.size p);
      let n = 1000 in
      let hits = Array.make n 0 in
      Rt.Pool.parallel_for p ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      (* pool is reusable *)
      let total = Atomic.make 0 in
      Rt.Pool.parallel_for p ~n:100 (fun i ->
          ignore (Atomic.fetch_and_add total i));
      Alcotest.(check int) "sum" 4950 (Atomic.get total);
      (* exceptions propagate *)
      Alcotest.(check bool) "exception propagates" true
        (match
           Rt.Pool.parallel_for p ~n:50 (fun i ->
               if i = 33 then failwith "boom")
         with
        | exception Failure _ -> true
        | () -> false);
      (* and the pool still works afterwards *)
      Rt.Pool.parallel_for p ~n:10 (fun _ -> ()));
  (* single-worker pool runs inline *)
  Rt.Pool.with_pool 1 (fun p -> Rt.Pool.parallel_for p ~n:5 (fun _ -> ()))

let histogram_exec () =
  (* paper Fig. 3: grayscale histogram *)
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let img = image ~name:"hi" Float [ param_b r; param_b c ] in
  let x = Types.var ~name:"x" () and y = Types.var ~name:"y" () in
  let bins = Types.var ~name:"b" () in
  let hist = func ~name:"hist" Int [ (bins, interval (ib 0) (ib 255)) ] in
  accumulate hist
    ~over:
      [
        (x, interval (ib 0) (param_b r -~ ib 1));
        (y, interval (ib 0) (param_b c -~ ib 1));
      ]
    ~index:[ img_at img [ v x; v y ] ]
    ~value:(fl 1.) Ast.Rsum;
  let env = [ (r, 40); (c, 30) ] in
  let opts = C.Options.opt_vec ~estimates:env () in
  let plan = C.Compile.run opts ~outputs:[ hist ] in
  let ib_ =
    Rt.Buffer.of_image img env (fun co ->
        float_of_int (((co.(0) * 37) + (co.(1) * 11)) mod 256))
  in
  let res = Rt.Executor.run plan env ~images:[ (img, ib_) ] in
  let h = Rt.Executor.output_buffer res hist in
  let total = Array.fold_left ( +. ) 0. h.Rt.Buffer.data in
  Alcotest.(check (float 0.)) "histogram counts all pixels" 1200. total;
  (* spot-check one bin against a direct count *)
  let direct = ref 0 in
  for xx = 0 to 39 do
    for yy = 0 to 29 do
      if ((xx * 37) + (yy * 11)) mod 256 = 42 then incr direct
    done
  done;
  Alcotest.(check (float 0.))
    "bin 42" (float_of_int !direct)
    (Rt.Buffer.get h [| 42 |]);
  (* privatized parallel reduction gives the same counts *)
  let plan4 =
    C.Compile.run (C.Options.opt_vec ~workers:4 ~estimates:env ())
      ~outputs:[ hist ]
  in
  let res4 = Rt.Executor.run plan4 env ~images:[ (img, ib_) ] in
  let h4 = Rt.Executor.output_buffer res4 hist in
  Alcotest.(check bool) "parallel histogram identical" true
    (Rt.Buffer.equal h h4)

let time_iterated_exec () =
  (* paper Table 1: f(t,x) = g(f(t-1,x)); here f(t,x) = f(t-1,x)+x,
     f(0,x) = 0, so f(T,x) = T*x. *)
  let t = Types.var ~name:"t" () and x = Types.var ~name:"x" () in
  let steps = 5 and width = 16 in
  let f =
    func ~name:"heat" Float
      [ (t, interval (ib 0) (ib steps)); (x, interval (ib 0) (ib (width - 1))) ]
  in
  define f
    [
      case (v t =: i 0) (fl 0.);
      case (v t >=: i 1) (app f [ v t -: i 1; v x ] +: v x);
    ];
  let env = [] in
  let plan = C.Compile.run (C.Options.opt ~estimates:env ()) ~outputs:[ f ] in
  (* self-recursive stages must stay straight *)
  Alcotest.(check int) "no tiled groups" 0 (C.Plan.n_tiled_groups plan);
  let res = Rt.Executor.run plan env ~images:[] in
  let b = Rt.Executor.output_buffer res f in
  for xx = 0 to width - 1 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "f(%d,%d)" steps xx)
      (float_of_int (steps * xx))
      (Rt.Buffer.get b [| steps; xx |])
  done

let workers_equivalence () =
  (* multi-worker execution must give identical results *)
  let app = Polymage_apps.Apps.find "harris" in
  let env = app.small_env in
  let o1 = C.Options.opt_vec ~workers:1 ~estimates:env () in
  let o4 = C.Options.opt_vec ~workers:4 ~estimates:env () in
  let _, r1 = Helpers.run_app app o1 env in
  let _, r4 = Helpers.run_app app o4 env in
  Helpers.check_buffers_equal ~eps:0. "workers 1 vs 4"
    (Helpers.output_of app r1) (Helpers.output_of app r4)

let missing_image_rejected () =
  let app = Polymage_apps.Apps.find "harris" in
  let env = app.small_env in
  let plan = C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:app.outputs in
  match Rt.Executor.run plan env ~images:[] with
  | exception Polymage_util.Err.Polymage_error { phase = Exec; _ } -> ()
  | _ -> Alcotest.fail "missing input image must be rejected"

let suite =
  ( "runtime",
    [
      Alcotest.test_case "buffer" `Quick buffer_units;
      Alcotest.test_case "pool" `Quick pool_units;
      Alcotest.test_case "histogram (Table 1)" `Quick histogram_exec;
      Alcotest.test_case "time-iterated (Table 1)" `Quick time_iterated_exec;
      Alcotest.test_case "workers equivalence" `Quick workers_equivalence;
      Alcotest.test_case "missing image" `Quick missing_image_rejected;
    ] )

let image_io_roundtrip () =
  let tmp = Filename.temp_file "pm_img" ".pgm" in
  let b = Rt.Buffer.create ~lo:[| 0; 0 |] ~dims:[| 7; 11 |] in
  for x = 0 to 6 do
    for y = 0 to 10 do
      Rt.Buffer.set b [| x; y |] (float_of_int (((x * 11) + y) mod 256) /. 255.)
    done
  done;
  Rt.Image_io.write_pgm tmp b;
  let b' = Rt.Image_io.read_pgm tmp in
  Alcotest.(check bool) "pgm round trip" true
    (Rt.Buffer.equal ~eps:(1. /. 255.) b b');
  Sys.remove tmp;
  let tmp = Filename.temp_file "pm_img" ".ppm" in
  let c3 = Rt.Buffer.create ~lo:[| 0; 0; 0 |] ~dims:[| 3; 5; 4 |] in
  for ch = 0 to 2 do
    for x = 0 to 4 do
      for y = 0 to 3 do
        Rt.Buffer.set c3 [| ch; x; y |]
          (float_of_int (((ch * 83) + (x * 17) + y) mod 256) /. 255.)
      done
    done
  done;
  Rt.Image_io.write_ppm tmp c3;
  let c3' = Rt.Image_io.read_ppm tmp in
  Alcotest.(check bool) "ppm round trip" true
    (Rt.Buffer.equal ~eps:(1. /. 255.) c3 c3');
  Sys.remove tmp;
  (* malformed input is reported *)
  let bad = Filename.temp_file "pm_img" ".pgm" in
  let oc = open_out bad in
  output_string oc "P9 nope";
  close_out oc;
  (match Rt.Image_io.read_pgm bad with
  | exception Rt.Image_io.Format_error _ -> ()
  | _ -> Alcotest.fail "bad magic must be rejected");
  Sys.remove bad

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "image io round trip" `Quick image_io_roundtrip ] )
