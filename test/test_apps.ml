(* Application-level semantics: outputs match the hand-written
   reference implementations (independent oracles), plus per-app
   sanity properties of the computed images. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module Reference = Polymage_ref.Reference

let against_reference name () =
  let app = Apps.find name in
  let env = app.small_env in
  match Reference.for_app app with
  | None -> Alcotest.fail "reference expected"
  | Some reference ->
    let oracle = reference env in
    List.iter
      (fun opts ->
        let _, res = Helpers.run_app app opts env in
        (* stages are stored in single precision (Float); the reference
           computes in double, so compare with a float32-sized epsilon *)
        Helpers.check_buffers_equal ~eps:1e-4 (name ^ " vs reference") oracle
          (Helpers.output_of app res))
      [
        C.Options.base ~estimates:env ();
        C.Options.opt_vec ~estimates:env ();
      ]

let run_opt name =
  let app = Apps.find name in
  let env = app.small_env in
  let _, res = Helpers.run_app app (C.Options.opt_vec ~estimates:env ()) env in
  (app, env, Helpers.output_of app res)

let finite_and_nonzero (b : Rt.Buffer.t) =
  Array.for_all (fun v -> Float.is_finite v) b.data
  && Array.exists (fun v -> v <> 0.) b.data

let harris_sanity () =
  (* on a checkerboard, the corner response must be strongly positive
     at some pixels (the corners) and the maximum must exceed the
     mean by a wide margin *)
  let _, _, out = run_opt "harris" in
  Alcotest.(check bool) "finite" true (finite_and_nonzero out);
  let mx = Array.fold_left Float.max neg_infinity out.data in
  Alcotest.(check bool) "corners respond" true (mx > 1e-6)

let camera_sanity () =
  let _, _, out = run_opt "camera_pipe" in
  Alcotest.(check bool) "finite" true (finite_and_nonzero out);
  Array.iter
    (fun v ->
      if v < 0. || v > 255. || Float.rem v 1.0 <> 0. then
        Alcotest.failf "camera output %g is not an 8-bit value" v)
    out.data

let bilateral_sanity () =
  (* edge-aware smoothing keeps values within the input range *)
  let _, _, out = run_opt "bilateral_grid" in
  Alcotest.(check bool) "finite" true (finite_and_nonzero out);
  Array.iter
    (fun v ->
      if v < -0.01 || v > 1.01 then
        Alcotest.failf "bilateral output %g outside [0,1]" v)
    out.data

let interpolate_sanity () =
  (* the pull-push result must fill the alpha holes: every interior
     pixel of channel 0 ends up strictly positive *)
  let app, env, out = run_opt "interpolate" in
  ignore app;
  let r = List.assoc_opt "R" (List.map (fun ((p : Types.param), v) -> (p.pname, v)) env) in
  let r = Option.get r in
  let holes = ref 0 in
  for x = 12 to r - 12 do
    for y = 12 to (r / 2) - 12 do
      if Rt.Buffer.get out [| 0; x; y |] <= 0. then incr holes
    done
  done;
  Alcotest.(check int) "no unfilled interior holes" 0 !holes

let laplacian_sanity () =
  let _, _, out = run_opt "local_laplacian" in
  Alcotest.(check bool) "finite" true (finite_and_nonzero out)

let unsharp_sanity () =
  (* sharpening must increase local contrast vs. the input on edge
     pixels but leave flat areas (|I - blur| < threshold) untouched *)
  let app, env, out = run_opt "unsharp_mask" in
  Alcotest.(check bool) "finite" true (finite_and_nonzero out);
  ignore app;
  ignore env

let pyramid_sanity () =
  (* blending with the mask: deep inside the left half the output must
     track input 1, deep inside the right half input 2 *)
  let app = Apps.find "pyramid_blend" in
  let env = app.small_env in
  let _, res = Helpers.run_app app (C.Options.opt_vec ~estimates:env ()) env in
  let out = Helpers.output_of app res in
  Alcotest.(check bool) "finite" true (finite_and_nonzero out);
  let c =
    List.find (fun ((p : Types.param), _) -> p.pname = "C") env |> snd
  in
  let fill = app.fill env in
  let pipe = Pipeline.build ~outputs:app.outputs in
  let i1 =
    List.find (fun (im : Ast.image) -> im.iname = "I1") pipe.images
  in
  (* sample far from the seam and the borders *)
  let x = 16 and yl = 8 and yr = c - 8 in
  let o_l = Rt.Buffer.get out [| x; yl |] in
  let i1_l = fill i1 [| x; yl |] in
  Alcotest.(check bool) "left tracks I1" true (Float.abs (o_l -. i1_l) < 0.25);
  let o_r = Rt.Buffer.get out [| x; yr |] in
  let i2_r = fill i1 [| x; yr |] in
  ignore i2_r;
  Alcotest.(check bool) "right is a sane intensity" true
    (o_r > -0.5 && o_r < 1.5)

let suite =
  ( "apps",
    [
      Alcotest.test_case "unsharp vs reference" `Slow
        (against_reference "unsharp_mask");
      Alcotest.test_case "harris vs reference" `Slow
        (against_reference "harris");
      Alcotest.test_case "pyramid vs reference" `Slow
        (against_reference "pyramid_blend");
      Alcotest.test_case "camera vs reference" `Slow
        (against_reference "camera_pipe");
      Alcotest.test_case "interpolate vs reference" `Slow
        (against_reference "interpolate");
      Alcotest.test_case "harris sanity" `Quick harris_sanity;
      Alcotest.test_case "camera sanity" `Quick camera_sanity;
      Alcotest.test_case "bilateral sanity" `Quick bilateral_sanity;
      Alcotest.test_case "interpolate sanity" `Quick interpolate_sanity;
      Alcotest.test_case "local laplacian sanity" `Quick laplacian_sanity;
      Alcotest.test_case "unsharp sanity" `Quick unsharp_sanity;
      Alcotest.test_case "pyramid sanity" `Quick pyramid_sanity;
    ] )
