(* Explicit SIMD codegen and the vector fast-math kernels: option
   plumbing, ISA probing overrides, cache-key hygiene, emitted-code
   structure, gcc's own vectorization report on the kernels, ulp-bound
   accuracy against libm (at every ISA level the POLYMAGE_ISA cap can
   reach on this host), and a forced-ISA differential round trip for
   every app. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module Cgen = Polymage_codegen.Cgen
module Toolchain = Polymage_backend.Toolchain
module Cache = Polymage_backend.Cache

let have_cc = lazy (Toolchain.available ())
let cc () = (Toolchain.get ()).Toolchain.cc

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let write_tmp ~suffix src =
  let tmp = Filename.temp_file "pm_simd" suffix in
  let oc = open_out tmp in
  output_string oc src;
  close_out oc;
  tmp

(* ---------- option plumbing ---------- *)

let mode_roundtrip () =
  List.iter
    (fun (s, m) ->
      Alcotest.(check bool)
        ("of_string " ^ s) true
        (C.Options.simd_mode_of_string s = Some m);
      Alcotest.(check string) ("to_string " ^ s) s
        (C.Options.simd_mode_to_string m))
    [
      ("auto", C.Options.Simd_auto);
      ("off", C.Options.Simd_off);
      ("sse2", C.Options.Simd_sse2);
      ("avx2", C.Options.Simd_avx2);
      ("avx512", C.Options.Simd_avx512);
    ];
  Alcotest.(check bool)
    "junk rejected" true
    (C.Options.simd_mode_of_string "avx1024" = None);
  let o = C.Options.opt ~estimates:[] () in
  Alcotest.(check bool) "default auto" true (o.C.Options.simd = Simd_auto);
  let o = C.Options.with_simd C.Options.Simd_avx2 o in
  Alcotest.(check bool) "with_simd" true (o.C.Options.simd = Simd_avx2)

(* ---------- POLYMAGE_ISA override ---------- *)

let isa_override () =
  let saved = Sys.getenv_opt "POLYMAGE_ISA" in
  let restore () =
    (* Unix.putenv cannot unset; the empty string matches no level and
       no "off", so isa_lookup falls back to the probe — the same
       answer an absent variable gives. *)
    Unix.putenv "POLYMAGE_ISA" (Option.value saved ~default:"")
  in
  Fun.protect ~finally:restore @@ fun () ->
  Unix.putenv "POLYMAGE_ISA" "off";
  Alcotest.(check bool) "off disables" true (Toolchain.isa_lookup () = None);
  List.iter
    (fun (s, l) ->
      Unix.putenv "POLYMAGE_ISA" s;
      Alcotest.(check bool) ("forces " ^ s) true
        (Toolchain.isa_lookup () = Some l))
    [
      ("sse2", Toolchain.Sse2);
      ("avx2", Toolchain.Avx2);
      ("avx512", Toolchain.Avx512);
    ];
  (* an unrecognized value falls back to the probe *)
  Unix.putenv "POLYMAGE_ISA" "pentium3";
  let probed = Toolchain.isa_lookup () in
  restore ();
  Alcotest.(check bool) "junk means probe" true
    (probed = Toolchain.isa_lookup ())

(* ---------- cache-key hygiene ---------- *)

let cache_key_tag () =
  let k ~tag =
    Cache.key ~tag ~cc:"gcc" ~version:"gcc 12" ~flags:"-O3"
      ~source:"int main(void){return 0;}"
  in
  Alcotest.(check bool)
    "simd level distinguishes keys" true
    (k ~tag:"simd=avx2" <> k ~tag:"");
  Alcotest.(check bool)
    "levels distinguish keys" true
    (k ~tag:"simd=avx2" <> k ~tag:"simd=avx512");
  (* the empty tag must keep hashing exactly as the pre-tag key did,
     so artifacts cached by earlier releases stay addressable *)
  let legacy =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            [ "gcc"; "gcc 12"; "-O3"; "int main(void){return 0;}" ]))
  in
  Alcotest.(check string) "empty tag = legacy key" legacy (k ~tag:"")

(* ---------- emitted-code structure ---------- *)

let plan_for name opts_of =
  let app = Apps.find name in
  let env = app.small_env in
  (C.Compile.run (opts_of env) ~outputs:app.outputs, env)

let structure () =
  let plan, _ = plan_for "local_laplacian" (fun env -> C.Options.opt_vec ~estimates:env ()) in
  let scalar = Cgen.emit plan in
  let simd = Cgen.emit ~simd:Cgen.Avx2 plan in
  Alcotest.(check bool) "scalar has no batched calls" false
    (contains scalar "pm_vexp(");
  (* satellite: the GCC spelling only — a bare "#pragma ivdep" is icc
     syntax that gcc ignores *)
  Alcotest.(check bool) "no ignored icc pragma" false
    (contains scalar "#pragma ivdep");
  Alcotest.(check bool) "GCC ivdep present" true
    (contains scalar "#pragma GCC ivdep");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("simd contains " ^ needle) true
        (contains simd needle))
    [
      "pm_vexp(";  (* remap stages batch their exp *)
      Printf.sprintf "+= %d" (Cgen.simd_width Cgen.Avx2);  (* strip loop *)
      "restrict";
      "__attribute__((constructor))";  (* cpuid dispatch *)
      "pm_vexp_avx512";  (* every clone is always present *)
      "POLYMAGE_ISA";  (* runtime cap *)
    ];
  Alcotest.(check bool) "plan batches" true (Cgen.plan_batches plan);
  let widths = Cgen.plan_widths ~simd:Cgen.Avx2 plan in
  Alcotest.(check bool) "some item strips at the avx2 width" true
    (Array.exists (fun w -> w = Cgen.simd_width Cgen.Avx2) widths)

let structure_no_batch () =
  (* no transcendentals anywhere in bilateral_grid: the SIMD emission
     must be byte-identical to the scalar one, so the off/auto A/B
     compares batched code and nothing else *)
  let plan, _ = plan_for "bilateral_grid" (fun env -> C.Options.opt_vec ~estimates:env ()) in
  Alcotest.(check bool) "plan does not batch" false (Cgen.plan_batches plan);
  Alcotest.(check string) "emission identical to scalar"
    (Digest.to_hex (Digest.string (Cgen.emit plan)))
    (Digest.to_hex (Digest.string (Cgen.emit ~simd:Cgen.Avx512 plan)));
  let widths = Cgen.plan_widths ~simd:Cgen.Avx512 plan in
  Alcotest.(check bool) "all items scalar" true
    (Array.for_all (fun w -> w = 1) widths)

(* ---------- gcc's own vectorization report ---------- *)

let kernels_vectorize () =
  if not (Lazy.force have_cc) then ()
  else begin
    let tmp = write_tmp ~suffix:".c" (Cgen.fastmath_source ^ "int main(void){return 0;}\n") in
    let probe = Filename.temp_file "pm_vecprobe" ".c" in
    let oc = open_out probe in
    output_string oc "int main(void){return 0;}\n";
    close_out oc;
    let supported =
      Sys.command
        (Printf.sprintf "%s -fopt-info-vec -fsyntax-only %s 2>/dev/null"
           (cc ()) probe)
      = 0
    in
    Sys.remove probe;
    if supported then begin
      let log = tmp ^ ".log" in
      let rc =
        Sys.command
          (Printf.sprintf
             "%s -O3 -march=native -fno-trapping-math -fopt-info-vec -c -o %s.o %s 2> %s"
             (cc ()) tmp tmp log)
      in
      Alcotest.(check int) "kernels compile" 0 rc;
      let ic = open_in log in
      let n = in_channel_length ic in
      let report = really_input_string ic n in
      close_in ic;
      Sys.remove log;
      (try Sys.remove (tmp ^ ".o") with Sys_error _ -> ());
      (* the whole point of the kernels: gcc must report their loops
         as vectorized (a regression here silently reverts every
         batched call to scalar speed) *)
      Alcotest.(check bool) "gcc reports vectorized loops" true
        (contains report "vectorized")
    end;
    Sys.remove tmp
  end

(* ---------- accuracy against libm ---------- *)

(* Monotonic integer view of a double: adjacent floats map to adjacent
   integers across the whole line (negatives reflected below
   Int64.min_int + bits), so ulp distance is plain subtraction. *)
let mono f =
  let i = Int64.bits_of_float f in
  if Int64.compare i 0L >= 0 then i else Int64.sub Int64.min_int i

let ulp a b =
  if a = b then 0L
  else Int64.abs (Int64.sub (mono a) (mono b))

let log_spaced lo hi per_decade =
  let decades = (log10 hi -. log10 lo) *. float_of_int per_decade in
  let n = int_of_float decades in
  List.init (n + 1) (fun i ->
      lo *. (10. ** (float_of_int i /. float_of_int per_decade)))

let exp_inputs =
  let mags = log_spaced 1e-320 700. 7 in
  List.concat_map (fun m -> [ m; -.m ]) mags
  @ [
      0.; -0.; infinity; neg_infinity; nan;
      709.782712893383996732; -745.133219101941108420;
      710.; -746.; 1e308; -1e308;
      4.94e-324; -4.94e-324; 2.225073858507201e-308;
    ]

let log_inputs =
  log_spaced 1e-320 1e308 7
  @ [ 0.; -0.; -1.; -1e308; infinity; neg_infinity; nan; 1.;
      4.94e-324; 2.2250738585072014e-308; 0.9999999999999999;
      1.0000000000000002 ]

let pow_inputs =
  let xs = [ 0.1; 0.5; 1.5; 2.; 7.389; 10.; 1e-3; 1e3 ]
  and ys = [ -30.; -10.7; -3.5; -1.; -0.5; 0.; 0.5; 1.; 2.; 10.7; 30. ] in
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
  @ [
      (0., 0.); (1., nan); (nan, 0.); (0., 3.); (0., -2.);
      (-2., 3.); (-2., 2.); (-2., -3.); (-1.5, 7.); (-1.5, 8.);
      (infinity, 2.); (2., infinity); (2., neg_infinity);
      (0.5, infinity); (0.5, neg_infinity); (nan, 2.); (2., nan);
    ]

(* Build one C driver around {!Cgen.fastmath_source} that runs all
   three kernels over the embedded inputs and prints one "%.17g" per
   result; compile once, then run it under each POLYMAGE_ISA cap so
   every reachable clone on this host is exercised. *)
let accuracy_driver () =
  let b = Buffer.create (String.length Cgen.fastmath_source + 4096) in
  let add = Buffer.add_string b in
  add "#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n";
  add "#include <math.h>\n";
  add Cgen.fastmath_source;
  let arr name vals =
    add (Printf.sprintf "static const double %s[] = {" name);
    List.iteri
      (fun i v ->
        if i > 0 then add ", ";
        if Float.is_nan v then add "(0.0/0.0)"
        else if v = infinity then add "(1.0/0.0)"
        else if v = neg_infinity then add "(-1.0/0.0)"
        else add (Printf.sprintf "%.17g" v))
      vals;
    add "};\n"
  in
  arr "ein" exp_inputs;
  arr "lin" log_inputs;
  arr "pxin" (List.map fst pow_inputs);
  arr "pyin" (List.map snd pow_inputs);
  add
    {|
int main(void) {
  int ne = sizeof(ein)/sizeof(ein[0]);
  int nl = sizeof(lin)/sizeof(lin[0]);
  int np = sizeof(pxin)/sizeof(pxin[0]);
  static double out[16384];
  pm_vexp(ein, out, ne);
  for (int i = 0; i < ne; i++) printf("%.17g\n", out[i]);
  pm_vlog(lin, out, nl);
  for (int i = 0; i < nl; i++) printf("%.17g\n", out[i]);
  pm_vpow(pxin, pyin, out, np);
  for (int i = 0; i < np; i++) printf("%.17g\n", out[i]);
  printf("level %d\n", pm_simd_level);
  return 0;
}
|};
  Buffer.contents b

let parse_floats path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let check_against_libm ~cap lines =
  let rest = ref lines in
  let next () =
    match !rest with
    | l :: tl ->
      rest := tl;
      float_of_string l
    | [] -> Alcotest.fail "driver output truncated"
  in
  let check_ulp what bound refv got =
    if Float.is_nan refv then
      Alcotest.(check bool) (what ^ " nan") true (Float.is_nan got)
    else if Float.abs refv = infinity || refv = 0. then
      Alcotest.(check bool)
        (Printf.sprintf "%s exact (%h vs %h)" what refv got)
        true
        (got = refv || (refv = 0. && got = 0.))
    else begin
      let u = Int64.to_float (ulp refv got) in
      if u > bound then
        Alcotest.failf "%s [%s]: %.0f ulp (ref %.17g, got %.17g)" what cap u
          refv got
    end
  in
  List.iter
    (fun x -> check_ulp (Printf.sprintf "exp(%.17g)" x) 4. (exp x) (next ()))
    exp_inputs;
  List.iter
    (fun x -> check_ulp (Printf.sprintf "log(%.17g)" x) 2. (log x) (next ()))
    log_inputs;
  List.iter
    (fun (x, y) ->
      (* error amplification: d/dx of 2^(y log2 x) puts a factor of
         |y ln x| on the reduced-argument error, on top of the exp and
         log cores' own few ulp *)
      let bound = 64. +. (4. *. Float.abs (y *. log (Float.abs x))) in
      check_ulp
        (Printf.sprintf "pow(%.17g, %.17g)" x y)
        bound (Float.pow x y) (next ()))
    pow_inputs;
  match !rest with
  | [ lvl ] ->
    Alcotest.(check bool) ("level line under " ^ cap) true
      (String.length lvl >= 6 && String.sub lvl 0 6 = "level ")
  | _ -> Alcotest.fail "driver output length mismatch"

let kernel_accuracy () =
  if not (Lazy.force have_cc) then ()
  else begin
    let tmp = write_tmp ~suffix:".c" (accuracy_driver ()) in
    let exe = tmp ^ ".exe" in
    let rc =
      Sys.command
        (Printf.sprintf "%s -O2 -std=gnu99 -o %s %s -lm" (cc ()) exe tmp)
    in
    Alcotest.(check int) "driver compiles" 0 rc;
    (* unset = full cpuid level; the caps exercise the lower clones *)
    List.iter
      (fun cap ->
        let out = tmp ^ "." ^ cap ^ ".out" in
        let pre = if cap = "native" then "" else "POLYMAGE_ISA=" ^ cap ^ " " in
        let rc = Sys.command (Printf.sprintf "%s%s > %s" pre exe out) in
        Alcotest.(check int) ("driver runs under " ^ cap) 0 rc;
        check_against_libm ~cap (parse_floats out);
        Sys.remove out)
      [ "native"; "avx2"; "sse2" ];
    Sys.remove tmp;
    Sys.remove exe
  end

(* ---------- forced-ISA differential round trip ---------- *)

(* Every app, every forced level: emitted SIMD C vs the native
   executor.  Tolerance is fast-math scale (the batched kernels are
   not bit-identical to libm), far tighter than any plausible bug. *)
let differential level () =
  if not (Lazy.force have_cc) then ()
  else
    List.iter
      (fun (app : Polymage_apps.App.t) ->
        let env = app.small_env in
        let opts =
          C.Options.with_tile [| 16; 16 |] (C.Options.opt ~estimates:env ())
        in
        let plan = C.Compile.run opts ~outputs:app.outputs in
        let c_fill (im : Ast.image) =
          let n = List.length im.iextents in
          let x = Printf.sprintf "c%d" (max 0 (n - 2)) in
          let y = if n >= 2 then Printf.sprintf "c%d" (n - 1) else "0" in
          let ch = if n >= 3 then "c0" else "0" in
          Printf.sprintf "(double)imod(%s*7 + %s*13 + %s*5, 32) / 8.0" x y ch
        in
        let ocaml_fill (c : int array) =
          let n = Array.length c in
          let x = if n >= 2 then c.(n - 2) else c.(0) in
          let y = if n >= 2 then c.(n - 1) else 0 in
          let ch = if n >= 3 then c.(0) else 0 in
          float_of_int (((x * 7) + (y * 13) + (ch * 5)) mod 32) /. 8.0
        in
        let src = Cgen.emit_with_main ~simd:level plan ~fill:c_fill ~env in
        let tmp = write_tmp ~suffix:".c" src in
        let exe = tmp ^ ".exe" in
        let rc =
          Sys.command
            (Printf.sprintf "%s -O1 -std=gnu99 -o %s %s -lm" (cc ()) exe tmp)
        in
        Alcotest.(check int) (app.name ^ " compiles") 0 rc;
        let outf = tmp ^ ".out" in
        let rc = Sys.command (Printf.sprintf "%s > %s" exe outf) in
        Alcotest.(check int) (app.name ^ " runs") 0 rc;
        let lines = parse_floats outf in
        let images =
          List.map
            (fun im -> (im, Rt.Buffer.of_image im env ocaml_fill))
            plan.pipe.Pipeline.images
        in
        let res = Rt.Executor.run plan env ~images in
        List.iter
          (fun (f, (b : Rt.Buffer.t)) ->
            let sum = Array.fold_left ( +. ) 0. b.Rt.Buffer.data in
            let prefix = f.Ast.fname ^ " " in
            match
              List.find_opt
                (fun l ->
                  String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix)
                lines
            with
            | None -> Alcotest.failf "%s: missing checksum line" app.name
            | Some l -> (
              match String.split_on_char ' ' l with
              | [ _; n; s ] ->
                Alcotest.(check int)
                  (app.name ^ " count")
                  (Rt.Buffer.size b) (int_of_string n);
                let cs = float_of_string s in
                let rel =
                  Float.abs (cs -. sum) /. (Float.abs sum +. 1e-9)
                in
                if rel > 1e-8 then
                  Alcotest.failf "%s/%s: checksum off by %g rel" app.name
                    f.Ast.fname rel
              | _ -> Alcotest.failf "%s: bad checksum line" app.name))
          res.outputs;
        Sys.remove tmp;
        Sys.remove exe;
        Sys.remove outf)
      (Apps.all ())

let suite =
  ( "simd",
    [
      Alcotest.test_case "simd_mode roundtrip" `Quick mode_roundtrip;
      Alcotest.test_case "POLYMAGE_ISA override" `Quick isa_override;
      Alcotest.test_case "cache key carries ISA tag" `Quick cache_key_tag;
      Alcotest.test_case "emission structure" `Quick structure;
      Alcotest.test_case "no-batch emission is scalar" `Quick
        structure_no_batch;
      Alcotest.test_case "kernels vectorize (-fopt-info-vec)" `Slow
        kernels_vectorize;
      Alcotest.test_case "kernel accuracy vs libm" `Slow kernel_accuracy;
      Alcotest.test_case "differential sse2" `Slow (differential Cgen.Sse2);
      Alcotest.test_case "differential avx2" `Slow (differential Cgen.Avx2);
      Alcotest.test_case "differential avx512" `Slow
        (differential Cgen.Avx512);
    ] )
