(* The serve layer: wire-protocol round trips and negative paths
   (truncated frames, bad magic, hostile length prefixes, unknown
   apps, geometry mismatches — the server must answer a structured
   error and stay up), the concurrency soak (8 client domains against
   the single-dispatcher server, bit-identical to the single-threaded
   oracle), overload shedding and admission rejection observable
   through serve/* counters, the warm-server guarantee (zero compiler
   invocations and zero subprocess spawns per request once a plan's
   artifact is pinned), and the Unix-socket listener. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App
module Err = Polymage_util.Err
module Metrics = Polymage_util.Metrics
module Trace = Polymage_util.Trace
module Toolchain = Polymage_backend.Toolchain
module Backend = Polymage_backend.Backend
module Exec_tier = Polymage_backend.Exec_tier
module Rawio = Polymage_backend.Rawio
module Protocol = Polymage_serve.Protocol
module Server = Polymage_serve.Server
module Listener = Polymage_serve.Listener

let have_cc = lazy (Toolchain.available ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Run [f] with metrics enabled and freshly zeroed, restoring the
   previous enablement either way. *)
let with_metrics f =
  let were_on = Metrics.enabled () in
  Metrics.enable ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      if not were_on then Metrics.disable ())
    f

let with_server cfg f =
  let server = Server.create cfg in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let native_cfg ?(workers = 2) () =
  { (Server.default_config ()) with Server.tier = Exec_tier.Native; workers }

(* The request a well-behaved client sends for [app] at [env], plus
   the oracle images — the exact buffers the server will decode (the
   wire drops lower bounds, so the oracle must too). *)
let request_for (app : App.t) env =
  let plan =
    C.Compile.run (C.Options.opt_vec ~estimates:env ()) ~outputs:app.outputs
  in
  let images =
    List.map
      (fun (im : Ast.image) ->
        (im, Rt.Buffer.of_image im env (app.fill env im)))
      plan.C.Plan.pipe.Pipeline.images
  in
  let req =
    {
      Protocol.app = app.App.name;
      params =
        List.map (fun ((p : Types.param), v) -> (p.Types.pname, v)) env;
      images =
        List.map
          (fun ((im : Ast.image), b) -> (im.Ast.iname, Rawio.encode b))
          images;
    }
  in
  let oracle_images =
    List.map
      (fun ((im : Ast.image), b) ->
        let blob = Rawio.encode b in
        let dims =
          Rawio.peek_dims ~stage:"test" blob ~off:0 ~len:(Bytes.length blob)
        in
        ( im,
          Rawio.decode ~stage:"test" blob ~off:0 ~len:(Bytes.length blob)
            ~lo:(Array.make (Array.length dims) 0)
            ~dims ))
      images
  in
  (req, oracle_images)

(* Single-threaded oracle with the server's own plan options. *)
let oracle (app : App.t) env ~workers ~images =
  let plan =
    C.Compile.run
      (C.Options.opt_vec ~workers ~estimates:env ())
      ~outputs:app.outputs
  in
  let res = Rt.Executor.run plan env ~images in
  List.map
    (fun ((f : Ast.func), b) -> (f.Ast.fname, b))
    res.Rt.Executor.outputs

let check_outputs ?(eps = 0.) what expected got =
  Alcotest.(check int)
    (what ^ ": output count")
    (List.length expected) (List.length got);
  List.iter
    (fun (name, (want : Rt.Buffer.t)) ->
      match List.assoc_opt name got with
      | None -> Alcotest.failf "%s: missing output %s" what name
      | Some have ->
        let d = Rt.Buffer.max_abs_diff want have in
        if Float.is_nan d then
          Alcotest.failf "%s: output %s shape differs" what name;
        if d > eps then
          Alcotest.failf "%s: output %s max abs diff %g > %g" what name d eps)
    expected

let env_with (app : App.t) scale =
  List.map (fun (p, v) -> (p, v * scale)) app.App.small_env

(* ---- protocol round trips ---- *)

let protocol_roundtrip () =
  let app = Apps.find "unsharp_mask" in
  let env = app.App.small_env in
  let req, _ = request_for app env in
  let buffers =
    List.map
      (fun (name, blob) ->
        let dims =
          Rawio.peek_dims ~stage:"t" blob ~off:0 ~len:(Bytes.length blob)
        in
        ( name,
          Rawio.decode ~stage:"t" blob ~off:0 ~len:(Bytes.length blob)
            ~lo:(Array.make (Array.length dims) 0)
            ~dims ))
      req.Protocol.images
  in
  let frame =
    Protocol.encode_request ~app:req.Protocol.app ~params:req.Protocol.params
      ~images:buffers
  in
  let kind, payload = Protocol.parse_frame frame in
  Alcotest.(check char) "request kind" 'Q' kind;
  let back = Protocol.decode_request payload in
  Alcotest.(check string) "app survives" req.Protocol.app back.Protocol.app;
  Alcotest.(check (list (pair string int)))
    "params survive" req.Protocol.params back.Protocol.params;
  List.iter2
    (fun (n1, b1) (n2, b2) ->
      Alcotest.(check string) "image name" n1 n2;
      Alcotest.(check bool) "image blob" true (Bytes.equal b1 b2))
    req.Protocol.images back.Protocol.images;
  (* an Ok response with a non-zero lower bound survives the wire *)
  let b = Rt.Buffer.create ~lo:[| -2; 3 |] ~dims:[| 4; 5 |] in
  Array.iteri
    (fun i _ -> b.Rt.Buffer.data.(i) <- (float_of_int i *. 0.5) -. 3.)
    b.Rt.Buffer.data;
  let resp = Protocol.Ok_response { tier = "native"; outputs = [ ("f", b) ] } in
  (match
     Protocol.parse_frame (Protocol.encode_response resp) |> fun (k, p) ->
     Protocol.decode_response ~kind:k p
   with
  | Protocol.Ok_response { tier; outputs = [ (name, b') ] } ->
    Alcotest.(check string) "tier survives" "native" tier;
    Alcotest.(check string) "output name" "f" name;
    Alcotest.(check bool) "lower bounds survive" true (b'.Rt.Buffer.lo = b.Rt.Buffer.lo);
    Alcotest.(check (float 0.)) "payload survives" 0.
      (Rt.Buffer.max_abs_diff b b')
  | _ -> Alcotest.fail "ok response did not survive the wire");
  (* and so does a structured error *)
  let e = Err.error ~stage:"serve" Err.IO "boom" in
  match
    Protocol.parse_frame (Protocol.encode_response (Protocol.Err_response e))
    |> fun (k, p) -> Protocol.decode_response ~kind:k p
  with
  | Protocol.Err_response e' ->
    Alcotest.(check bool) "phase survives" true (e'.Err.phase = Err.IO);
    Alcotest.(check (option string)) "stage survives" (Some "serve") e'.Err.stage;
    Alcotest.(check string) "detail survives" "boom" e'.Err.detail
  | _ -> Alcotest.fail "error response did not survive the wire"

(* ---- negative paths: the server answers a structured error and
   stays up after every one of them ---- *)

let expect_err what frame_or_req ~(server : Server.t) =
  let reply =
    match frame_or_req with
    | `Frame f -> Server.handle_frame server f
    | `Req r -> Protocol.encode_response (Server.submit server r)
  in
  let kind, payload = Protocol.parse_frame reply in
  Alcotest.(check char) (what ^ ": error frame") 'E' kind;
  match Protocol.decode_response ~kind payload with
  | Protocol.Err_response e -> e
  | Protocol.Ok_response _ -> Alcotest.failf "%s: expected an error" what

let protocol_negative_paths () =
  with_metrics @@ fun () ->
  with_server (native_cfg ()) @@ fun server ->
  let app = Apps.find "unsharp_mask" in
  let env = app.App.small_env in
  let req, _ = request_for app env in
  let good () =
    match Server.submit server req with
    | Protocol.Ok_response { tier; _ } ->
      Alcotest.(check string) "server still serves" "native" tier
    | Protocol.Err_response e ->
      Alcotest.failf "server wedged: %s" (Err.to_string e)
  in
  let good_frame =
    Protocol.encode_request ~app:req.Protocol.app ~params:req.Protocol.params
      ~images:
        (List.map
           (fun ((im : Ast.image), b) -> (im.Ast.iname, b))
           (List.map
              (fun (im : Ast.image) ->
                (im, Rt.Buffer.of_image im env (app.fill env im)))
              (C.Compile.run
                 (C.Options.opt_vec ~estimates:env ())
                 ~outputs:app.outputs)
                .C.Plan.pipe.Pipeline.images))
  in
  let surgery f =
    let b = Bytes.copy good_frame in
    f b;
    b
  in
  (* transport garbage *)
  let e =
    expect_err "short header" ~server
      (`Frame (Bytes.of_string "PM"))
  in
  Alcotest.(check bool) "short header is IO" true (e.Err.phase = Err.IO);
  good ();
  let e =
    expect_err "bad magic" ~server
      (`Frame (surgery (fun b -> Bytes.set b 0 'X')))
  in
  Alcotest.(check bool) "bad magic is IO" true (e.Err.phase = Err.IO);
  good ();
  let e =
    expect_err "unknown kind" ~server
      (`Frame (surgery (fun b -> Bytes.set b 8 'Z')))
  in
  Alcotest.(check bool) "unknown kind mentions kind" true
    (String.length e.Err.detail > 0);
  good ();
  (* a response frame is not a request *)
  let e =
    expect_err "response as request" ~server
      (`Frame
        (Protocol.encode_response
           (Protocol.Err_response (Err.error Err.IO "x"))))
  in
  Alcotest.(check bool) "response-as-request is IO" true (e.Err.phase = Err.IO);
  good ();
  (* hostile length prefix: bigger than the payload bound *)
  let e =
    expect_err "oversized length prefix" ~server
      (`Frame
        (surgery (fun b ->
             Bytes.set_int32_le b 9
               (Int32.of_int (Protocol.max_payload + 1)))))
  in
  Alcotest.(check bool) "oversized prefix is IO" true (e.Err.phase = Err.IO);
  good ();
  (* length prefix promising more than arrived *)
  let e =
    expect_err "truncated payload" ~server
      (`Frame (Bytes.sub good_frame 0 (Bytes.length good_frame - 7)))
  in
  Alcotest.(check bool) "truncated payload is IO" true (e.Err.phase = Err.IO);
  good ();
  (* app-level garbage: unknown app, unknown parameter, unknown /
     missing image, geometry mismatch *)
  let e = expect_err "unknown app" ~server (`Req { req with Protocol.app = "nope" }) in
  Alcotest.(check bool) "unknown app is Dsl" true (e.Err.phase = Err.Dsl);
  Alcotest.(check bool) "unknown app names the app" true
    (contains e.Err.detail "nope"
     || String.length e.Err.detail > 0);
  good ();
  let e =
    expect_err "unknown parameter" ~server
      (`Req { req with Protocol.params = [ ("ZZ", 1) ] })
  in
  Alcotest.(check bool) "unknown parameter is Dsl" true (e.Err.phase = Err.Dsl);
  good ();
  let e =
    expect_err "missing image" ~server (`Req { req with Protocol.images = [] })
  in
  Alcotest.(check bool) "missing image is Dsl" true (e.Err.phase = Err.Dsl);
  good ();
  let e =
    expect_err "unknown image" ~server
      (`Req
        {
          req with
          Protocol.images =
            ("nope", snd (List.hd req.Protocol.images)) :: req.Protocol.images;
        })
  in
  Alcotest.(check bool) "unknown image is Dsl" true (e.Err.phase = Err.Dsl);
  good ();
  let wrong_geometry =
    let name, blob = List.hd req.Protocol.images in
    let dims =
      Rawio.peek_dims ~stage:"t" blob ~off:0 ~len:(Bytes.length blob)
    in
    let b =
      Rt.Buffer.create
        ~lo:(Array.make (Array.length dims) 0)
        ~dims:(Array.map (fun d -> d + 1) dims)
    in
    (name, Rawio.encode b)
  in
  let e =
    expect_err "geometry mismatch" ~server
      (`Req
        {
          req with
          Protocol.images =
            wrong_geometry :: List.tl req.Protocol.images;
        })
  in
  Alcotest.(check bool) "geometry mismatch is IO" true (e.Err.phase = Err.IO);
  Alcotest.(check bool) "geometry mismatch says so" true
    (contains e.Err.detail "geometry");
  good ();
  Alcotest.(check bool) "invalid requests were counted" true
    (Metrics.get "serve/invalid" >= 10)

(* read_frame against a real file descriptor: clean EOF is None, a cut
   connection mid-frame is a structured IO error. *)
let transport_negative_paths () =
  let pipe_to f =
    let r, w = Unix.pipe () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close r with _ -> ());
        try Unix.close w with _ -> ())
      (fun () -> f r w)
  in
  pipe_to (fun r w ->
      Unix.close w;
      Alcotest.(check bool) "clean EOF is None" true
        (Protocol.read_frame r = None));
  pipe_to (fun r w ->
      Protocol.write_all w (Bytes.of_string "PMSRV");
      Unix.close w;
      match Protocol.read_frame r with
      | _ -> Alcotest.fail "mid-header cut should raise"
      | exception Err.Polymage_error e ->
        Alcotest.(check bool) "mid-header cut is IO" true (e.Err.phase = Err.IO));
  pipe_to (fun r w ->
      let app = Apps.find "unsharp_mask" in
      let req, _ = request_for app app.App.small_env in
      let frame =
        Protocol.encode_request ~app:req.Protocol.app
          ~params:req.Protocol.params ~images:[]
      in
      Protocol.write_all w (Bytes.sub frame 0 (Bytes.length frame - 3));
      Unix.close w;
      match Protocol.read_frame r with
      | _ -> Alcotest.fail "mid-payload cut should raise"
      | exception Err.Polymage_error e ->
        Alcotest.(check bool) "mid-payload cut is IO" true
          (e.Err.phase = Err.IO))

(* ---- the soak: 8 client domains, mixed apps and sizes, every
   response bit-identical to the single-threaded oracle ---- *)

let soak_domains = 8
let soak_per_domain = 6

let concurrency_soak () =
  with_metrics @@ fun () ->
  let cfg = native_cfg ~workers:2 () in
  with_server cfg @@ fun server ->
  (* one build per app: parameters compare by identity, so the env
     must come from the same App.t the plan compiles against *)
  let unsharp = Apps.find "unsharp_mask" and harris = Apps.find "harris" in
  let configs =
    [|
      (unsharp, env_with unsharp 1);
      (unsharp, env_with unsharp 2);
      (harris, env_with harris 1);
      (harris, env_with harris 2);
    |]
  in
  let prepared =
    Array.map
      (fun (app, env) ->
        let req, oracle_images = request_for app env in
        (req, oracle (app : App.t) env ~workers:cfg.Server.workers
           ~images:oracle_images))
      configs
  in
  let doms =
    List.init soak_domains (fun d ->
        Domain.spawn (fun () ->
            List.init soak_per_domain (fun j ->
                let i = (d + j) mod Array.length prepared in
                let req, _ = prepared.(i) in
                (i, Server.submit server req))))
  in
  let replies = List.concat_map Domain.join doms in
  Alcotest.(check int) "every request answered"
    (soak_domains * soak_per_domain)
    (List.length replies);
  List.iter
    (fun (i, reply) ->
      match reply with
      | Protocol.Err_response e ->
        Alcotest.failf "soak request failed: %s" (Err.to_string e)
      | Protocol.Ok_response { tier; outputs } ->
        Alcotest.(check string) "served on the native tier" "native" tier;
        let _, expected = prepared.(i) in
        check_outputs ~eps:0. "soak vs oracle" expected outputs)
    replies;
  Alcotest.(check int) "serve/requests counts them all"
    (soak_domains * soak_per_domain)
    (Metrics.get "serve/requests");
  Alcotest.(check int) "every request got a response"
    (Metrics.get "serve/requests")
    (Metrics.get "serve/responses");
  Alcotest.(check int) "queue drained" 0 (Metrics.get "serve/queue_depth");
  Alcotest.(check int) "nothing rejected" 0 (Metrics.get "serve/rejected")

(* ---- overload: shed before queue, reject before hang ---- *)

let overload_shedding () =
  with_metrics @@ fun () ->
  Rt.Fault.arm ~site:"compile_flaky" ~seed:0;
  Fun.protect ~finally:(fun () -> Rt.Fault.disarm ()) @@ fun () ->
  let cfg =
    {
      (Server.default_config ()) with
      Server.tier = Exec_tier.Auto;
      workers = 1;
      batch_max = 4;
      batch_window_ms = 200;
      shed_depth = 2;
      max_depth = 5;
    }
  in
  with_server cfg @@ fun server ->
  let app = Apps.find "unsharp_mask" in
  let env = app.App.small_env in
  let req, oracle_images = request_for app env in
  let expected = oracle app env ~workers:1 ~images:oracle_images in
  let doms =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            List.init 2 (fun _ -> Server.submit server req)))
  in
  let replies = List.concat_map Domain.join doms in
  Alcotest.(check int) "no request hangs: all 16 answered" 16
    (List.length replies);
  let ok, err =
    List.partition_map
      (function
        | Protocol.Ok_response { tier = _; outputs } -> Either.Left outputs
        | Protocol.Err_response e -> Either.Right e)
      replies
  in
  (* every rejection is a structured, phase-Exec admission error *)
  List.iter
    (fun (e : Err.t) ->
      Alcotest.(check bool) "rejection is phase Exec" true
        (e.Err.phase = Err.Exec);
      Alcotest.(check bool) "rejection says overloaded" true
        (contains e.Err.detail "admission"))
    err;
  Alcotest.(check int) "rejections counted" (List.length err)
    (Metrics.get "serve/rejected");
  Alcotest.(check bool) "the bound rejected someone" true
    (List.length err >= 1);
  Alcotest.(check bool) "the ladder shed someone first" true
    (Metrics.get "serve/shed" >= 1);
  Alcotest.(check bool) "shed requests were served on the shed plan" true
    (Metrics.get "serve/served/native-shed" >= 1);
  (* shed or not, every Ok result is still the right image *)
  List.iter
    (fun outputs -> check_outputs ~eps:1e-6 "overload result" expected outputs)
    ok;
  Alcotest.(check int) "queue drained" 0 (Metrics.get "serve/queue_depth")

(* ---- an internal failure surfaces as a structured error and the
   server keeps serving ---- *)

let serve_request_fault () =
  with_metrics @@ fun () ->
  Rt.Fault.arm ~site:"serve_request" ~seed:0;
  Fun.protect ~finally:(fun () -> Rt.Fault.disarm ()) @@ fun () ->
  with_server (native_cfg ()) @@ fun server ->
  let app = Apps.find "unsharp_mask" in
  let req, _ = request_for app app.App.small_env in
  (match Server.submit server req with
  | Protocol.Err_response e ->
    Alcotest.(check bool) "injected failure is structured" true
      (e.Err.phase = Err.Exec)
  | Protocol.Ok_response _ -> Alcotest.fail "fault did not fire");
  match Server.submit server req with
  | Protocol.Ok_response _ -> ()
  | Protocol.Err_response e ->
    Alcotest.failf "server did not survive the fault: %s" (Err.to_string e)

(* ---- warm server: once a plan's artifact is pinned, a request costs
   zero compiler invocations, zero subprocess spawns, zero dlopens —
   just one in-process call ---- *)

let warm_server_zero_compiles () =
  if not (Lazy.force have_cc) then ()
  else begin
    let dir = Filename.temp_file "pm_serve" "" in
    Sys.remove dir;
    with_metrics @@ fun () ->
    let cfg =
      {
        (Server.default_config ~cache_dir:dir ()) with
        Server.tier = Exec_tier.Auto;
        workers = 1;
      }
    in
    with_server cfg @@ fun server ->
    let app = Apps.find "unsharp_mask" in
    let req, _ = request_for app app.App.small_env in
    let tier_of () =
      match Server.submit server req with
      | Protocol.Ok_response { tier; _ } -> tier
      | Protocol.Err_response e -> Alcotest.failf "%s" (Err.to_string e)
    in
    ignore (tier_of ());
    Server.await_warm server;
    (* settle: the first post-warm call canaries + promotes the fresh
       artifact, the second runs pinned *)
    ignore (tier_of ());
    Alcotest.(check string) "hot-swapped to c-dlopen" "c-dlopen" (tier_of ());
    Metrics.reset ();
    for _ = 1 to 10 do
      Alcotest.(check string) "warm request stays in-process" "c-dlopen"
        (tier_of ())
    done;
    Alcotest.(check int) "zero compiler invocations when warm" 0
      (Metrics.get "backend/compile_invocations");
    Alcotest.(check int) "zero subprocess spawns when warm" 0
      (Metrics.get "backend/subprocess_spawns");
    Alcotest.(check int) "zero dlopens when warm (image already loaded)" 0
      (Metrics.get "backend/dl_loads");
    Alcotest.(check int) "ten in-process calls" 10
      (Metrics.get "backend/dl_calls");
    Alcotest.(check int) "all served on c-dlopen" 10
      (Metrics.get "serve/served/c-dlopen");
    (* the cache CLI's data source knows about the artifact *)
    let d = Backend.describe ~cache_dir:dir () in
    Alcotest.(check bool) "cache describe reports the trusted artifact" true
      (contains d "trusted")
  end

(* ---- the Unix-socket listener ---- *)

let listener_socket_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pm-serve-test-%d.sock" (Unix.getpid ()))
  in
  with_server (native_cfg ()) @@ fun server ->
  let listener = Listener.bind ~socket_path:path server in
  let accept_dom = Domain.spawn (fun () -> Listener.run ~max_conns:2 listener) in
  let app = Apps.find "unsharp_mask" in
  let env = app.App.small_env in
  let plan =
    C.Compile.run (C.Options.opt_vec ~estimates:env ()) ~outputs:app.outputs
  in
  let images =
    List.map
      (fun (im : Ast.image) ->
        (im.Ast.iname, Rt.Buffer.of_image im env (app.fill env im)))
      plan.C.Plan.pipe.Pipeline.images
  in
  let params =
    List.map (fun ((p : Types.param), v) -> (p.Types.pname, v)) env
  in
  (* connection 1: a good call round-trips through the socket *)
  let fd = Listener.connect path in
  (match Listener.call fd ~app:app.App.name ~params ~images with
  | Protocol.Ok_response { tier; outputs } ->
    Alcotest.(check string) "socket call served" "native" tier;
    Alcotest.(check bool) "socket call returned outputs" true
      (List.length outputs > 0)
  | Protocol.Err_response e -> Alcotest.failf "%s" (Err.to_string e));
  Unix.close fd;
  (* connection 2: garbage gets a structured error frame, then the
     connection is dropped — and the listener exits cleanly after *)
  let fd = Listener.connect path in
  (* exactly one header's worth of garbage, so the server consumes it
     all before closing and the client sees a clean FIN, not an RST *)
  Protocol.write_all fd (Bytes.of_string "XXXXXXXXZ\x00\x00\x00\x00");
  (match Protocol.read_frame fd with
  | Some ('E', payload) -> (
    match Protocol.decode_response ~kind:'E' payload with
    | Protocol.Err_response e ->
      Alcotest.(check bool) "garbage answered with IO error" true
        (e.Err.phase = Err.IO)
    | _ -> Alcotest.fail "expected an error response")
  | _ -> Alcotest.fail "expected an error frame for garbage");
  (match Protocol.read_frame fd with
  | None -> ()
  | Some _ -> Alcotest.fail "connection should close after the error"
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Unix.close fd;
  Domain.join accept_dom;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* A client that fires a request and vanishes before reading the
   response must cost one connection, not the daemon: the response
   write hits a closed peer (EPIPE — or a fatal SIGPIPE if the
   listener forgot to ignore it), and the next connection must still
   be served. *)
let listener_client_early_close () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pm-serve-early-%d.sock" (Unix.getpid ()))
  in
  with_server (native_cfg ()) @@ fun server ->
  let listener = Listener.bind ~socket_path:path server in
  let accept_dom = Domain.spawn (fun () -> Listener.run ~max_conns:2 listener) in
  let app = Apps.find "unsharp_mask" in
  let env = app.App.small_env in
  let plan =
    C.Compile.run (C.Options.opt_vec ~estimates:env ()) ~outputs:app.outputs
  in
  let images =
    List.map
      (fun (im : Ast.image) ->
        (im.Ast.iname, Rt.Buffer.of_image im env (app.fill env im)))
      plan.C.Plan.pipe.Pipeline.images
  in
  let params =
    List.map (fun ((p : Types.param), v) -> (p.Types.pname, v)) env
  in
  (* connection 1: request in, hang up without reading the response *)
  let fd = Listener.connect path in
  Protocol.write_all fd (Protocol.encode_request ~app:app.App.name ~params ~images);
  Unix.close fd;
  (* connection 2: the daemon is still alive and still serving *)
  let fd = Listener.connect path in
  (match Listener.call fd ~app:app.App.name ~params ~images with
  | Protocol.Ok_response { tier; _ } ->
    Alcotest.(check string) "daemon survived the early close" "native" tier
  | Protocol.Err_response e -> Alcotest.failf "%s" (Err.to_string e));
  Unix.close fd;
  Domain.join accept_dom

(* ---- the 'S' stats frame: a mixed-app soak, then the snapshot must
   agree with the oracle — end-to-end histogram count equals
   serve/requests, per-plan counters match what we actually sent — and
   a malformed stats frame gets a structured 'E' with the server still
   serving ---- *)

let jfield what name j =
  match j with
  | Trace.Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> Alcotest.failf "%s: missing field %S" what name)
  | _ -> Alcotest.failf "%s: expected an object holding %S" what name

let jint what name j =
  match jfield what name j with
  | Trace.Num n -> int_of_float n
  | _ -> Alcotest.failf "%s: field %S is not a number" what name

let jstr what name j =
  match jfield what name j with
  | Trace.Str s -> s
  | _ -> Alcotest.failf "%s: field %S is not a string" what name

let fetch_stats server =
  let reply = Server.handle_frame server (Protocol.encode_stats_request ()) in
  let kind, payload = Protocol.parse_frame reply in
  Alcotest.(check char) "stats frame kind" 'T' kind;
  match Trace.parse_json (Protocol.decode_stats_response payload) with
  | Ok j -> j
  | Error e -> Alcotest.failf "stats JSON does not parse: %s" e

let stats_roundtrip () =
  with_metrics @@ fun () ->
  with_server (native_cfg ()) @@ fun server ->
  let unsharp = Apps.find "unsharp_mask" and harris = Apps.find "harris" in
  let req_u, _ = request_for unsharp unsharp.App.small_env in
  let req_h, _ = request_for harris harris.App.small_env in
  let n_unsharp = 5 and n_harris = 3 in
  let ok what = function
    | Protocol.Ok_response _ -> ()
    | Protocol.Err_response e ->
      Alcotest.failf "%s failed: %s" what (Err.to_string e)
  in
  for _ = 1 to n_unsharp do
    ok "unsharp" (Server.submit server req_u)
  done;
  for _ = 1 to n_harris do
    ok "harris" (Server.submit server req_h)
  done;
  (* one invalid request: counted in serve/requests and the end-to-end
     histogram, attributed to no plan *)
  (match Server.submit server { req_u with Protocol.app = "nope" } with
  | Protocol.Err_response _ -> ()
  | Protocol.Ok_response _ -> Alcotest.fail "unknown app served");
  let j = fetch_stats server in
  Alcotest.(check int) "schema version" 1 (jint "stats" "schema_version" j);
  Alcotest.(check string) "service name" "polymage-serve"
    (jstr "stats" "service" j);
  (match jfield "stats" "telemetry" j with
  | Trace.Bool true -> ()
  | _ -> Alcotest.fail "telemetry should be on by default");
  let requests = Metrics.get "serve/requests" in
  Alcotest.(check int) "oracle request count"
    (n_unsharp + n_harris + 1)
    requests;
  (* the acceptance invariant: every request — served, shed, rejected
     or invalid — lands in the end-to-end histogram exactly once *)
  let e2e = jfield "stats" "e2e_ms" (jfield "stats" "histograms" j) in
  Alcotest.(check int) "e2e histogram count equals serve/requests" requests
    (jint "histograms" "count" e2e);
  Alcotest.(check bool) "e2e p99 is positive" true
    (match jfield "e2e" "p99_ms" e2e with
    | Trace.Num n -> n > 0.
    | _ -> false);
  (* per-plan counters match the oracle *)
  let plans =
    match jfield "stats" "plans" j with
    | Trace.Arr ps -> ps
    | _ -> Alcotest.fail "plans is not an array"
  in
  Alcotest.(check int) "two plans built" 2 (List.length plans);
  let plan_of app =
    match List.find_opt (fun p -> jstr "plan" "app" p = app) plans with
    | Some p -> p
    | None -> Alcotest.failf "no plan entry for %s" app
  in
  let pu = plan_of "unsharp_mask" and ph = plan_of "harris" in
  Alcotest.(check int) "unsharp plan requests" n_unsharp
    (jint "plan" "requests" pu);
  Alcotest.(check int) "harris plan requests" n_harris
    (jint "plan" "requests" ph);
  List.iter
    (fun p ->
      Alcotest.(check int) "nothing shed" 0 (jint "plan" "shed" p);
      Alcotest.(check int) "nothing rejected" 0 (jint "plan" "rejected" p);
      Alcotest.(check int) "no errors" 0 (jint "plan" "errors" p);
      let pe2e = jfield "plan" "e2e_ms" (jfield "plan" "histograms" p) in
      Alcotest.(check int) "plan histogram counts executed requests"
        (jint "plan" "requests" p)
        (jint "plan-hist" "count" pe2e))
    [ pu; ph ];
  (* the queue is idle and the peak watermark saw at least one entry *)
  let q = jfield "stats" "queue" j in
  Alcotest.(check int) "queue drained" 0 (jint "queue" "depth" q);
  Alcotest.(check bool) "queue peak recorded" true
    (jint "queue" "peak" q >= 1);
  (* slow-request ring holds our soak, slowest first *)
  (match jfield "stats" "slow_requests" j with
  | Trace.Arr (r0 :: _ as rs) ->
    Alcotest.(check bool) "ring is bounded" true (List.length rs <= 8);
    let t0 = jint "slow" "total_ms" r0 in
    List.iter
      (fun r ->
        Alcotest.(check bool) "ring sorted slowest-first" true
          (jint "slow" "total_ms" r <= t0))
      rs
  | Trace.Arr [] -> Alcotest.fail "slow-request ring is empty after a soak"
  | _ -> Alcotest.fail "slow_requests is not an array");
  (* a malformed stats frame — 'S' with a payload — is a structured
     error, and the server keeps serving *)
  let bad = Bytes.create (Protocol.header_bytes + 3) in
  Bytes.blit_string Protocol.magic 0 bad 0 8;
  Bytes.set bad 8 'S';
  Bytes.set_int32_le bad 9 3l;
  Bytes.blit_string "boo" 0 bad Protocol.header_bytes 3;
  let e = expect_err "stats with payload" ~server (`Frame bad) in
  Alcotest.(check bool) "malformed stats is IO" true (e.Err.phase = Err.IO);
  ok "server still serves" (Server.submit server req_u);
  let j' = fetch_stats server in
  Alcotest.(check int) "stats still answers, count advanced"
    (requests + 1)
    (jint "histograms" "count"
       (jfield "stats" "e2e_ms" (jfield "stats" "histograms" j')))

(* With telemetry off the snapshot still answers — counters and live
   gauges — but reports no histograms and no slow requests. *)
let stats_telemetry_off () =
  with_metrics @@ fun () ->
  with_server { (native_cfg ()) with Server.telemetry = false }
  @@ fun server ->
  let app = Apps.find "unsharp_mask" in
  let req, _ = request_for app app.App.small_env in
  (match Server.submit server req with
  | Protocol.Ok_response _ -> ()
  | Protocol.Err_response e -> Alcotest.failf "%s" (Err.to_string e));
  let j = fetch_stats server in
  (match jfield "stats" "telemetry" j with
  | Trace.Bool false -> ()
  | _ -> Alcotest.fail "telemetry should report off");
  (match jfield "stats" "histograms" j with
  | Trace.Null -> ()
  | _ -> Alcotest.fail "histograms should be null with telemetry off");
  Alcotest.(check int) "counters still live" 1
    (Metrics.get "serve/requests")

(* The JSONL access log: one record per completed request, each line
   its own JSON document with the fields the ops tooling keys on. *)
let access_log_records () =
  let log = Filename.temp_file "pm-serve-log" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove log with _ -> ())
  @@ fun () ->
  with_metrics @@ fun () ->
  (with_server { (native_cfg ()) with Server.access_log = Some log }
   @@ fun server ->
   let app = Apps.find "unsharp_mask" in
   let req, _ = request_for app app.App.small_env in
   for _ = 1 to 3 do
     match Server.submit server req with
     | Protocol.Ok_response _ -> ()
     | Protocol.Err_response e -> Alcotest.failf "%s" (Err.to_string e)
   done);
  let ic = open_in log in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per request" 3 (List.length lines);
  List.iter
    (fun line ->
      match Trace.parse_json line with
      | Error e -> Alcotest.failf "access log line does not parse: %s" e
      | Ok r ->
        Alcotest.(check string) "log records the app" "unsharp_mask"
          (jstr "log" "app" r);
        Alcotest.(check string) "log records the outcome" "ok"
          (jstr "log" "outcome" r);
        Alcotest.(check bool) "log records a rid" true
          (jint "log" "rid" r >= 0))
    lines

(* ---- client timeouts: a listener that accepts but never answers
   must surface as a structured timeout, not a hang ---- *)

let client_timeout () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pm-serve-timeout-%d.sock" (Unix.getpid ()))
  in
  (* a deliberately silent peer: bound and listening so connects
     succeed, but nothing ever accepts or answers *)
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind sock (ADDR_UNIX path);
  Unix.listen sock 4;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      try Sys.remove path with _ -> ())
  @@ fun () ->
  let fd = Listener.connect ~timeout_ms:200 path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match Listener.call_stats fd with
  | _ -> Alcotest.fail "silent server should time the client out"
  | exception Err.Polymage_error e ->
    let dt = Unix.gettimeofday () -. t0 in
    Alcotest.(check bool) "timeout is IO" true (e.Err.phase = Err.IO);
    Alcotest.(check bool) "error says timed out" true
      (contains e.Err.detail "timed out");
    Alcotest.(check bool) "deadline honored (< 5s)" true (dt < 5.)

(* Socket-file hygiene: binding refuses to steal a live daemon's
   address, but sweeps a stale socket file nobody answers on. *)
let listener_socket_hygiene () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pm-serve-hyg-%d.sock" (Unix.getpid ()))
  in
  with_server (native_cfg ()) @@ fun server ->
  let listener = Listener.bind ~socket_path:path server in
  (match Listener.bind ~socket_path:path server with
  | _ -> Alcotest.fail "second bind should refuse a live socket"
  | exception Err.Polymage_error e ->
    Alcotest.(check bool) "refusal is IO" true (e.Err.phase = Err.IO);
    Alcotest.(check bool) "refusal says already served" true
      (contains e.Err.detail "already"));
  Alcotest.(check bool) "live socket file survives the refused bind" true
    (Sys.file_exists path);
  (* drain: the refused bind's liveness probe is connection 1 in the
     backlog (already closed — immediate EOF); ours is connection 2 *)
  let accept_dom = Domain.spawn (fun () -> Listener.run ~max_conns:2 listener) in
  let fd = Listener.connect path in
  Unix.close fd;
  Domain.join accept_dom;
  Alcotest.(check bool) "socket file removed after run" false
    (Sys.file_exists path);
  (* a stale socket file — bound once, nobody listening — is swept *)
  let stale = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind stale (ADDR_UNIX path);
  Unix.close stale;
  Alcotest.(check bool) "stale socket file exists" true (Sys.file_exists path);
  let listener = Listener.bind ~socket_path:path server in
  let accept_dom = Domain.spawn (fun () -> Listener.run ~max_conns:1 listener) in
  let fd = Listener.connect path in
  Unix.close fd;
  Domain.join accept_dom;
  Alcotest.(check bool) "stale path rebound and cleaned up" false
    (Sys.file_exists path)

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol round trips" `Quick protocol_roundtrip;
      Alcotest.test_case "protocol negative paths" `Quick
        protocol_negative_paths;
      Alcotest.test_case "transport negative paths" `Quick
        transport_negative_paths;
      Alcotest.test_case "concurrency soak vs oracle" `Slow concurrency_soak;
      Alcotest.test_case "overload sheds then rejects" `Slow overload_shedding;
      Alcotest.test_case "injected request fault is structured" `Quick
        serve_request_fault;
      Alcotest.test_case "warm server compiles nothing" `Slow
        warm_server_zero_compiles;
      Alcotest.test_case "stats frame round trip" `Slow stats_roundtrip;
      Alcotest.test_case "stats with telemetry off" `Quick
        stats_telemetry_off;
      Alcotest.test_case "access log records requests" `Quick
        access_log_records;
      Alcotest.test_case "client times out on a silent server" `Quick
        client_timeout;
      Alcotest.test_case "unix-socket listener" `Quick
        listener_socket_roundtrip;
      Alcotest.test_case "client early close survives" `Quick
        listener_client_early_close;
      Alcotest.test_case "socket file hygiene" `Quick
        listener_socket_hygiene;
    ] )
