(* Unit and property tests for the utility library: exact rationals,
   flooring integer division, and topological sorting. *)
module Q = Polymage_util.Rational
module Topo = Polymage_util.Topo
module Im = Polymage_util.Intmath

let qgen =
  QCheck.Gen.(
    map2 (fun n d -> Q.make n (if d = 0 then 1 else d)) (int_range (-50) 50)
      (int_range (-12) 12))

let arb_q = QCheck.make ~print:Q.to_string qgen

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let abs_int x = abs x

let rational_props =
  [
    prop "add commutative" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    prop "mul associative" 500
      (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) ->
        Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c)));
    prop "add/sub roundtrip" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.sub (Q.add a b) b) a);
    prop "normalized: den > 0, gcd 1" 500 arb_q (fun a ->
        let open Q in
        a.den > 0
        &&
        let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
        gcd (abs_int a.num) a.den <= 1 || gcd (abs_int a.num) a.den = 1);
    prop "floor <= q < floor+1" 500 arb_q (fun a ->
        let f = Q.floor a in
        Q.compare (Q.of_int f) a <= 0 && Q.compare a (Q.of_int (f + 1)) < 0);
    prop "ceil = -floor(-q)" 500 arb_q (fun a ->
        Q.ceil a = -Q.floor (Q.neg a));
    prop "inv . inv = id (nonzero)" 500 arb_q (fun a ->
        QCheck.assume (Q.sign a <> 0);
        Q.equal (Q.inv (Q.inv a)) a);
  ]

let rational_units () =
  Alcotest.(check int) "floor -7/2" (-4) (Q.floor (Q.make (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Q.ceil (Q.make (-7) 2));
  Alcotest.(check int) "floor 7/2" 3 (Q.floor (Q.make 7 2));
  Alcotest.(check bool) "normalize sign" true (Q.equal (Q.make 1 (-2)) (Q.make (-1) 2));
  Alcotest.(check int) "lcm of dens" 12 (Q.lcm_dens [ Q.make 1 4; Q.make 1 6 ]);
  Alcotest.(check bool) "is_int" true (Q.is_int (Q.make 8 4));
  Alcotest.check_raises "make 1 0" (Invalid_argument "Rational.make: zero denominator")
    (fun () -> ignore (Q.make 1 0))

let intmath_units () =
  let check name exp got = Alcotest.(check int) name exp got in
  check "floor_div 7 2" 3 (Im.floor_div 7 2);
  check "floor_div (-7) 2" (-4) (Im.floor_div (-7) 2);
  check "floor_div 7 (-2)" (-4) (Im.floor_div 7 (-2));
  check "floor_div (-7) (-2)" 3 (Im.floor_div (-7) (-2));
  check "floor_div (-8) 2" (-4) (Im.floor_div (-8) 2);
  check "floor_div 0 5" 0 (Im.floor_div 0 5);
  check "ceil_div 7 2" 4 (Im.ceil_div 7 2);
  check "ceil_div (-7) 2" (-3) (Im.ceil_div (-7) 2);
  check "ceil_div 8 2" 4 (Im.ceil_div 8 2);
  check "pos_mod 7 3" 1 (Im.pos_mod 7 3);
  check "pos_mod (-7) 3" 2 (Im.pos_mod (-7) 3);
  check "pos_mod (-6) 3" 0 (Im.pos_mod (-6) 3);
  check "pos_mod (-7) (-3)" 2 (Im.pos_mod (-7) (-3))

let nonzero_gen = QCheck.Gen.(map (fun d -> if d = 0 then 1 else d) (int_range (-200) 200))

let intmath_props =
  let arb = QCheck.make QCheck.Gen.(pair (int_range (-10000) 10000) nonzero_gen) in
  [
    prop "floor_div brackets the quotient" 1000 arb (fun (a, b) ->
        let q = Im.floor_div a b in
        (* q = floor(a/b): q*b <= a < (q+1)*b when b > 0, reversed when b < 0 *)
        if b > 0 then (q * b) <= a && a < ((q + 1) * b)
        else (q * b) >= a && a > ((q + 1) * b));
    prop "ceil_div = -floor_div(-a)" 1000 arb (fun (a, b) ->
        Im.ceil_div a b = -Im.floor_div (-a) b);
    prop "floor_div/pos_mod decompose (b > 0)" 1000 arb (fun (a, b) ->
        let b = abs b in
        (Im.floor_div a b * b) + Im.pos_mod a b = a);
    prop "pos_mod in range" 1000 arb (fun (a, b) ->
        let r = Im.pos_mod a b in
        0 <= r && r < abs b);
  ]

let topo_units () =
  (* diamond: 0 -> 1,2 -> 3 *)
  let succs = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  let order = Topo.sort ~n:4 ~succs in
  let pos = Array.make 4 0 in
  List.iteri (fun i u -> pos.(u) <- i) order;
  Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
  Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3));
  Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3));
  let levels = Topo.levels ~n:4 ~succs in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] levels;
  Alcotest.(check bool) "acyclic" true (Topo.is_acyclic ~n:4 ~succs);
  let cyclic = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [ 0 ] in
  Alcotest.(check bool) "cycle detected" false (Topo.is_acyclic ~n:3 ~succs:cyclic);
  (match Topo.sort ~n:3 ~succs:cyclic with
  | exception Topo.Cycle cyc ->
    Alcotest.(check int) "cycle length" 3 (List.length cyc)
  | _ -> Alcotest.fail "expected Cycle")

let topo_props =
  [
    prop "random DAG sorts consistently" 200
      QCheck.(pair (int_range 1 20) (list (pair small_nat small_nat)))
      (fun (n, edges) ->
        (* keep only forward edges to guarantee acyclicity *)
        let edges =
          List.filter_map
            (fun (a, b) ->
              let a = a mod n and b = b mod n in
              if a < b then Some (a, b) else None)
            edges
        in
        let succs u = List.filter_map (fun (a, b) -> if a = u then Some b else None) edges in
        let order = Topo.sort ~n ~succs in
        let pos = Array.make n 0 in
        List.iteri (fun i u -> pos.(u) <- i) order;
        List.length order = n
        && List.for_all (fun (a, b) -> pos.(a) < pos.(b)) edges);
  ]

let suite =
  ( "util",
    [
      Alcotest.test_case "rational units" `Quick rational_units;
      Alcotest.test_case "intmath units" `Quick intmath_units;
      Alcotest.test_case "topo units" `Quick topo_units;
    ]
    @ rational_props @ intmath_props @ topo_props )
