(* Property tests for the row-kernel compiler's affine access
   analysis (cursor stride computation), plus regression tests for the
   non-positive-divisor validation added alongside it. *)
open Polymage_ir
module Kernel = Polymage_rt.Kernel
module Dsl = Polymage_dsl.Dsl

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* A random expression that is affine in [vars] by construction:
   sums, differences and negations of variables, integer constants and
   bound parameters, with multiplication restricted to a const-like
   factor on either side. *)
let affine_instance =
  let open QCheck.Gen in
  let* nv = int_range 2 3 in
  let vars = List.init nv (fun _ -> Types.var ()) in
  let* np = int_range 0 2 in
  let params = List.init np (fun _ -> Types.param ()) in
  let* pvals = flatten_l (List.map (fun _ -> int_range 1 20) params) in
  let bindings = List.combine params pvals in
  let varr = Array.of_list vars and parr = Array.of_list params in
  let const_leaf =
    oneof
      ([ map (fun c -> Ast.Const (float_of_int c)) (int_range (-9) 9) ]
      @
      if np > 0 then
        [ map (fun i -> Ast.Param parr.(i)) (int_range 0 (np - 1)) ]
      else [])
  in
  let leaf =
    oneof
      [ const_leaf; map (fun i -> Ast.Var varr.(i)) (int_range 0 (nv - 1)) ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 2,
            map2
              (fun a b -> Ast.Binop (Ast.Add, a, b))
              (tree (depth - 1)) (tree (depth - 1)) );
          ( 2,
            map2
              (fun a b -> Ast.Binop (Ast.Sub, a, b))
              (tree (depth - 1)) (tree (depth - 1)) );
          (1, map (fun a -> Ast.Unop (Ast.Neg, a)) (tree (depth - 1)));
          ( 1,
            map2
              (fun c a -> Ast.Binop (Ast.Mul, c, a))
              const_leaf (tree (depth - 1)) );
          ( 1,
            map2
              (fun a c -> Ast.Binop (Ast.Mul, a, c))
              (tree (depth - 1)) const_leaf );
        ]
  in
  let* e = tree 4 in
  let* coords =
    list_repeat 5 (flatten_l (List.map (fun _ -> int_range (-50) 50) vars))
  in
  return (vars, bindings, e, coords)

let arb_affine =
  QCheck.make
    ~print:(fun (_, _, e, _) -> Expr.to_string e)
    affine_instance

let eval_at vars bindings e coord =
  let var v =
    let rec idx i = function
      | [] -> QCheck.Test.fail_report "free var not in vars"
      | w :: tl -> if Types.var_equal v w then i else idx (i + 1) tl
    in
    float_of_int (List.nth coord (idx 0 vars))
  in
  let param p = float_of_int (Types.bind_exn bindings p) in
  Expr.eval ~var ~param
    ~call:(fun _ _ -> QCheck.Test.fail_report "unexpected call")
    ~img:(fun _ _ -> QCheck.Test.fail_report "unexpected img")
    e

let affine_props =
  [
    prop "affine_of matches direct evaluation" 500 arb_affine
      (fun (vars, bindings, e, coords) ->
        match Kernel.affine_of ~vars ~bindings e with
        | None -> false (* affine by construction: must be recognized *)
        | Some (coefs, const) ->
          Array.length coefs = List.length vars
          && List.for_all
               (fun coord ->
                 let lin =
                   List.fold_left ( + ) const
                     (List.mapi (fun i c -> coefs.(i) * c) coord)
                 in
                 eval_at vars bindings e coord = float_of_int lin)
               coords);
    prop "affine_of is invariant under simplify" 500 arb_affine
      (fun (vars, bindings, e, _) ->
        match
          ( Kernel.affine_of ~vars ~bindings e,
            Kernel.affine_of ~vars ~bindings (Expr.simplify e) )
        with
        | Some (c1, k1), Some (c2, k2) -> c1 = c2 && k1 = k2
        | _ -> false);
  ]

let nonaffine_units () =
  let x = Types.var () and y = Types.var () in
  let vars = [ x; y ] in
  let none name e =
    Alcotest.(check bool)
      name true
      (Kernel.affine_of ~vars ~bindings:[] e = None)
  in
  none "var * var" (Ast.Binop (Ast.Mul, Ast.Var x, Ast.Var y));
  none "integer division" (Ast.IDiv (Ast.Var x, 2));
  none "modulo" (Ast.IMod (Ast.Var y, 2));
  none "sqrt" (Ast.Unop (Ast.Sqrt, Ast.Var x));
  none "non-integer constant" (Ast.Binop (Ast.Add, Ast.Var x, Ast.Const 0.5));
  none "unbound parameter" (Ast.Param (Types.param ()));
  none "division by expr" (Ast.Binop (Ast.Div, Ast.Var x, Ast.Const 2.));
  (* sanity: the same shapes with legal ingredients are accepted *)
  let p = Types.param () in
  match
    Kernel.affine_of ~vars
      ~bindings:[ (p, 7) ]
      (Ast.Binop
         ( Ast.Add,
           Ast.Binop (Ast.Mul, Ast.Param p, Ast.Var y),
           Ast.Binop (Ast.Sub, Ast.Var x, Ast.Const 3.) ))
  with
  | Some (coefs, const) ->
    Alcotest.(check (array int)) "coefs p*y + x - 3" [| 1; 7 |] coefs;
    Alcotest.(check int) "const p*y + x - 3" (-3) const
  | None -> Alcotest.fail "p*y + x - 3 should be affine"

(* Non-positive divisors are rejected at both entry points: the DSL
   operators and pipeline construction (for IRs built directly). *)
let divisor_units () =
  let x = Types.var () in
  let raises name f =
    Alcotest.(check bool)
      name true
      (match f () with
      | exception Polymage_util.Err.Polymage_error _ -> true
      | _ -> false)
  in
  raises "( /^ ) 0" (fun () -> Dsl.( /^ ) (Ast.Var x) 0);
  raises "( /^ ) -2" (fun () -> Dsl.( /^ ) (Ast.Var x) (-2));
  raises "( %^ ) 0" (fun () -> Dsl.( %^ ) (Ast.Var x) 0);
  raises "( %^ ) -1" (fun () -> Dsl.( %^ ) (Ast.Var x) (-1));
  let build_with e =
    let f =
      Ast.func ~name:"bad" Types.Float
        [ (x, Interval.of_ints 0 7) ]
    in
    f.Ast.fbody <- Ast.Cases [ { ccond = None; rhs = e } ];
    Pipeline.build ~outputs:[ f ]
  in
  let rejects name e =
    Alcotest.(check bool)
      name true
      (match build_with e with
      | exception Pipeline.Invalid_pipeline _ -> true
      | _ -> false)
  in
  rejects "build rejects IDiv by 0" (Ast.IDiv (Ast.Var x, 0));
  rejects "build rejects IMod by -2" (Ast.IMod (Ast.Var x, -2));
  match build_with (Ast.IDiv (Ast.Var x, 2)) with
  | _ -> ()
  | exception Pipeline.Invalid_pipeline m ->
    Alcotest.fail ("positive divisor wrongly rejected: " ^ m)

let suite =
  ( "kernel",
    [
      Alcotest.test_case "non-affine shapes rejected" `Quick nonaffine_units;
      Alcotest.test_case "non-positive divisors rejected" `Quick divisor_units;
    ]
    @ affine_props )
