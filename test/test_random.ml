(* Property-based testing on randomly generated pipelines: arbitrary
   DAGs of point-wise, stencil, down- and up-sampling stages must
   execute identically under the base and the fully optimized
   configurations, for random tile sizes and thresholds — and also
   through [Executor.run_safe] (which must not degrade on healthy
   plans) and the C back end.

   The pipeline generator lives in [Helpers] (shared with the fault
   suite); the QCheck seed is pinned by [Helpers.qcheck_seed] and every
   failure prints a one-line repro command. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Cgen = Polymage_codegen.Cgen
open Polymage_dsl.Dsl

type op = Helpers.op = Point | Stencil | Down | Up

let exec_equal (spec : op list * int list * int list)
    ((tile, threshold, vec), para) =
  let img, out = Helpers.build_random spec in
  let env = [] in
  let images = Helpers.rand_images img env Helpers.rand_fill in
  let reference = Helpers.naive_output out env images in
  let opts =
    C.Options.with_threshold threshold
      (C.Options.with_tile [| tile; tile |]
         (if vec then C.Options.opt_vec ~estimates:env ()
          else C.Options.opt ~estimates:env ()))
  in
  let opts =
    match para with
    | 0 -> opts
    | 1 -> { opts with C.Options.tiling = C.Options.Parallelogram }
    | _ -> { opts with C.Options.tiling = C.Options.Split }
  in
  let plan_o = C.Compile.run opts ~outputs:[ out ] in
  let ro = Rt.Executor.run plan_o env ~images in
  let b = Rt.Executor.output_buffer ro out in
  if Rt.Buffer.max_abs_diff reference b > 1e-9 then
    QCheck.Test.fail_reportf "optimized executor diverges from oracle\n%s"
      Helpers.repro_line;
  (* the same plan through the degradation ladder: healthy plans must
     return the identical result without taking any rung *)
  let rs, degradations = Rt.Executor.run_safe plan_o env ~images in
  if degradations <> [] then
    QCheck.Test.fail_reportf "run_safe degraded on a healthy plan (%s)\n%s"
      (String.concat ", "
         (List.map (fun (d : Rt.Executor.degradation) -> d.rung) degradations))
      Helpers.repro_line;
  let bs = Rt.Executor.output_buffer rs out in
  if Rt.Buffer.max_abs_diff reference bs > 1e-9 then
    QCheck.Test.fail_reportf "run_safe output diverges from oracle\n%s"
      Helpers.repro_line;
  true

let arb =
  QCheck.make
    ~print:(fun ((ops, _, _), ((t, th, v), para)) ->
      Printf.sprintf "ops=[%s] tile=%d thresh=%g vec=%b mode=%d\n%s"
        (Helpers.pp_ops ops) t th v para Helpers.repro_line)
    QCheck.Gen.(
      pair Helpers.gen_pipeline
        (pair
           (triple (oneofl [ 4; 8; 16; 33 ]) (oneofl [ 0.2; 0.5; 4.0 ]) bool)
           (int_range 0 2)))

let suite =
  ( "random-pipelines",
    [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"tiled == naive on random DAGs" ~count:60 arb
           (fun (spec, cfg) -> exec_equal spec cfg));
    ] )

(* ---- the C back end against the naive oracle ---- *)

let have_gcc = lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

(* Compile the optimized plan to C, build with gcc, run, and compare
   the printed checksum against the naive OCaml oracle's sum. *)
let c_equal (spec : op list * int list * int list) tile =
  if not (Lazy.force have_gcc) then true
  else begin
    let img, out = Helpers.build_random spec in
    let env = [] in
    let images = Helpers.rand_images img env Helpers.rand_fill in
    let reference = Helpers.naive_output out env images in
    let ref_sum = Array.fold_left ( +. ) 0. reference.Rt.Buffer.data in
    let opts =
      C.Options.with_tile [| tile; tile |] (C.Options.opt ~estimates:env ())
    in
    let plan = C.Compile.run opts ~outputs:[ out ] in
    (* same fill as [Helpers.rand_fill], in C *)
    let c_fill (_ : Ast.image) = "(double)imod(c0*13 + c1*29, 23) / 7.0" in
    let src = Cgen.emit_with_main plan ~fill:c_fill ~env in
    let tmp = Filename.temp_file "pm_rand" ".c" in
    let oc = open_out tmp in
    output_string oc src;
    close_out oc;
    let exe = tmp ^ ".exe" and outf = tmp ^ ".out" in
    let cleanup () = List.iter (fun f -> try Sys.remove f with _ -> ()) [ tmp; exe; outf ] in
    Fun.protect ~finally:cleanup (fun () ->
        if Sys.command (Printf.sprintf "gcc -O1 -std=c99 -o %s %s -lm" exe tmp) <> 0
        then
          QCheck.Test.fail_reportf "gcc rejected generated C (%s)\n%s" tmp
            Helpers.repro_line;
        if Sys.command (Printf.sprintf "%s > %s" exe outf) <> 0 then
          QCheck.Test.fail_reportf "generated binary failed\n%s"
            Helpers.repro_line;
        let ic = open_in outf in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        let prefix = out.Ast.fname ^ " " in
        match
          List.find_opt
            (fun l ->
              String.length l > String.length prefix
              && String.sub l 0 (String.length prefix) = prefix)
            !lines
        with
        | None ->
          QCheck.Test.fail_reportf "missing checksum line for %s\n%s"
            out.Ast.fname Helpers.repro_line
        | Some l -> (
          match String.split_on_char ' ' l with
          | [ _; n; s ] ->
            if int_of_string n <> Rt.Buffer.size reference then
              QCheck.Test.fail_reportf "C output size mismatch\n%s"
                Helpers.repro_line;
            let cs = float_of_string s in
            let rel =
              Float.abs (cs -. ref_sum) /. (Float.abs ref_sum +. 1e-9)
            in
            if rel > 1e-9 then
              QCheck.Test.fail_reportf
                "C checksum %.17g vs oracle %.17g (rel %g)\n%s" cs ref_sum rel
                Helpers.repro_line;
            true
          | _ ->
            QCheck.Test.fail_reportf "bad checksum line %S\n%s" l
              Helpers.repro_line))
  end

let arb_c =
  QCheck.make
    ~print:(fun ((ops, _, _), t) ->
      Printf.sprintf "C ops=[%s] tile=%d\n%s" (Helpers.pp_ops ops) t
        Helpers.repro_line)
    QCheck.Gen.(pair Helpers.gen_pipeline (oneofl [ 8; 16 ]))

let suite =
  ( fst suite,
    snd suite
    @ [
        QCheck_alcotest.to_alcotest ~long:true
          (QCheck.Test.make ~name:"C codegen == naive on random DAGs"
             ~count:5 arb_c (fun (spec, t) -> c_equal spec t));
      ] )

(* 1-D chains: exercises single-loop tiling, where the inner loop IS
   the tiled loop. *)
let exec_equal_1d (ops : op list) tile =
  let x = Types.var ~name:"ox" () in
  let base_size = 256 in
  let img = image ~name:"rin1" Float [ ib (base_size + 4) ] in
  let dom s = [ (x, interval (ib 0) (ib (s + 3))) ] in
  let interior s = between (v x) (i 2) (i s) in
  let stages = ref [] in
  List.iteri
    (fun k op ->
      let prev_size, prev =
        match !stages with
        | [] -> (base_size, fun ix -> img_at img [ ix ])
        | (s, f) :: _ -> (s, fun ix -> app f [ ix ])
      in
      let op =
        match op with
        | Down when prev_size < 32 -> Stencil
        | Up when prev_size > 256 -> Stencil
        | o -> o
      in
      let size, rhs =
        match op with
        | Point -> (prev_size, (fl 1.5 *: prev (v x)) -: fl 0.25)
        | Stencil ->
          ( prev_size,
            fl (1. /. 3.)
            *: (prev (v x -: i 1) +: prev (v x) +: prev (v x +: i 1)) )
        | Down -> (prev_size / 2, prev ((i 2 *: v x) -: i 1) +: prev (i 2 *: v x))
        | Up -> (prev_size * 2, prev ((v x -: i 1) /^ 2) +: prev ((v x +: i 1) /^ 2))
      in
      let f = func ~name:(Printf.sprintf "o%d" k) Float (dom size) in
      define f [ case (interior size) rhs ];
      stages := (size, f) :: !stages)
    ops;
  let out = snd (List.hd !stages) in
  let env = [] in
  let images =
    [ (img, Rt.Buffer.of_image img env (fun c -> float_of_int (c.(0) mod 19) /. 5.)) ]
  in
  let run opts =
    let plan = C.Compile.run opts ~outputs:[ out ] in
    Rt.Executor.output_buffer (Rt.Executor.run plan env ~images) out
  in
  let a = run (C.Options.base ~estimates:env ()) in
  let b =
    run (C.Options.with_tile [| tile |] (C.Options.opt_vec ~estimates:env ()))
  in
  Rt.Buffer.max_abs_diff a b <= 1e-9

let arb_1d =
  QCheck.make
    ~print:(fun (ops, t) ->
      Printf.sprintf "1d ops=%d tile=%d\n%s" (List.length ops) t
        Helpers.repro_line)
    QCheck.Gen.(
      pair
        (list_size (int_range 2 7)
           (frequency
              [ (2, return Point); (3, return Stencil); (2, return Down);
                (2, return Up) ]))
        (oneofl [ 4; 16; 64 ]))

let suite =
  ( fst suite,
    snd suite
    @ [
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make ~name:"tiled == naive on random 1-D chains"
             ~count:40 arb_1d (fun (ops, t) -> exec_equal_1d ops t));
      ] )
