(* The central correctness property (DESIGN.md invariant 1): for every
   benchmark and every legal combination of compile options, the
   optimized executor produces exactly the output of the base
   configuration. *)
module C = Polymage_compiler
module Apps = Polymage_apps.Apps

let variants env =
  let opt = C.Options.opt ~estimates:env () in
  let no_k o = { o with C.Options.kernels = false } in
  [
    (* The baseline uses row kernels (kernels=true is the default);
       disabling them exercises the closure trees, so these variants
       pin kernel-vs-closure bit-identity on every executor. *)
    ("base no kernels", no_k (C.Options.base ~estimates:env ()));
    ("base+vec", { (C.Options.base ~estimates:env ()) with C.Options.vec = true });
    ( "base+vec no kernels",
      no_k { (C.Options.base ~estimates:env ()) with C.Options.vec = true } );
    ("opt no kernels", no_k opt);
    ("opt+vec no kernels", no_k (C.Options.opt_vec ~estimates:env ()));
    ( "parallelogram no kernels",
      no_k { opt with C.Options.tiling = C.Options.Parallelogram } );
    ("split no kernels", no_k { opt with C.Options.tiling = C.Options.Split });
    ("opt tile 32x256 (paper default)", opt);
    ("opt+vec", C.Options.opt_vec ~estimates:env ());
    ("opt tile 8x8", C.Options.with_tile [| 8; 8 |] opt);
    ("opt tile 16x64", C.Options.with_tile [| 16; 64 |] opt);
    ("opt tile 13x27 (odd)", C.Options.with_tile [| 13; 27 |] opt);
    ("opt thresh 0.2", C.Options.with_threshold 0.2 opt);
    ("opt thresh 2.0 (merge-everything)", C.Options.with_threshold 2.0 opt);
    ("opt no scratchpads", { opt with C.Options.scratchpads = false });
    ("opt naive overlap", { opt with C.Options.naive_overlap = true });
    ("opt no case splitting", { opt with C.Options.split_cases = false });
    ("opt 3 workers", { opt with C.Options.workers = 3 });
    ( "parallelogram tiling",
      { opt with C.Options.tiling = C.Options.Parallelogram } );
    ( "parallelogram tiling 16x16",
      {
        (C.Options.with_tile [| 16; 16 |] opt) with
        C.Options.tiling = C.Options.Parallelogram;
      } );
    ("split tiling", { opt with C.Options.tiling = C.Options.Split });
    ( "split tiling 16x16 3 workers",
      {
        (C.Options.with_tile [| 16; 16 |] opt) with
        C.Options.tiling = C.Options.Split;
        workers = 3;
      } );
    ( "opt+vec naive overlap no scratch",
      {
        (C.Options.opt_vec ~estimates:env ()) with
        C.Options.naive_overlap = true;
        scratchpads = false;
      } );
  ]

(* Baseline outputs are computed once per app and shared by the
   per-variant cases. *)
let baselines = Hashtbl.create 8

let baseline name =
  match Hashtbl.find_opt baselines name with
  | Some b -> b
  | None ->
    let app = Apps.find name in
    let env = app.small_env in
    let _, base = Helpers.run_app app (C.Options.base ~estimates:env ()) env in
    let b = (app, env, Helpers.output_of app base) in
    Hashtbl.replace baselines name b;
    b

let variant_case name vname () =
  let app, env, expected = baseline name in
  let opts = List.assoc vname (variants env) in
  let _, res = Helpers.run_app app opts env in
  Helpers.check_buffers_equal ~eps:1e-9
    (Printf.sprintf "%s / %s" name vname)
    expected (Helpers.output_of app res)

(* Disabling inlining changes which intermediates get materialized
   (and therefore rounded to single precision), so it is compared
   against a base plan with inlining disabled too — then the tiling
   machinery must again match exactly. *)
let no_inline_case name () =
  let app = Apps.find name in
  let env = app.small_env in
  let base_ni =
    { (C.Options.base ~estimates:env ()) with C.Options.inline_on = false }
  in
  let opt_ni =
    { (C.Options.opt ~estimates:env ()) with C.Options.inline_on = false }
  in
  let _, r1 = Helpers.run_app app base_ni env in
  let _, r2 = Helpers.run_app app opt_ni env in
  Helpers.check_buffers_equal ~eps:1e-9
    (name ^ " / no-inline opt vs no-inline base")
    (Helpers.output_of app r1) (Helpers.output_of app r2)

let variant_names = List.map fst (variants [])

let suite =
  ( "exec-matrix",
    List.concat_map
      (fun name ->
        List.map
          (fun vname ->
            Alcotest.test_case
              (Printf.sprintf "%s / %s" name vname)
              `Slow (variant_case name vname))
          variant_names
        @ [
            Alcotest.test_case (name ^ " / no-inlining") `Slow
              (no_inline_case name);
          ])
      Apps.names )
