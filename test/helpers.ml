(* Shared utilities for the test suites. *)
open Polymage_ir
module C = Polymage_compiler
module Rt = Polymage_rt
module Apps = Polymage_apps.Apps
module App = Polymage_apps.App

(* ---- reproducible QCheck seed ----

   qcheck-alcotest reads QCHECK_SEED lazily, at the first property run.
   Resolving it here — module initialization runs before [Alcotest.run]
   — pins every property in the suite to a single seed, which each
   failing property prints via [repro_line], so any CI failure
   reproduces locally with one command. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None ->
    Random.self_init ();
    let s = Random.int 1_000_000_000 in
    Unix.putenv "QCHECK_SEED" (string_of_int s);
    s

let repro_line =
  Printf.sprintf "repro: QCHECK_SEED=%d dune runtest" qcheck_seed

let images_for (app : App.t) (plan : C.Plan.t) env =
  List.map
    (fun im -> (im, Rt.Buffer.of_image im env (app.fill env im)))
    plan.pipe.Pipeline.images

let run_app (app : App.t) (opts : C.Options.t) env =
  let plan = C.Compile.run opts ~outputs:app.outputs in
  let images = images_for app plan env in
  let res = Rt.Executor.run plan env ~images in
  (plan, res)

let output_of (app : App.t) res =
  Rt.Executor.output_buffer res (List.hd app.outputs)

let check_buffers_equal ?(eps = 1e-9) what a b =
  let d = Rt.Buffer.max_abs_diff a b in
  if Float.is_nan d then Alcotest.failf "%s: buffer shapes differ" what;
  if d > eps then Alcotest.failf "%s: max abs diff %g > %g" what d eps

(* A tiny two-stage blur pipeline used by several unit suites. *)
let blur_pipeline () =
  let open Polymage_dsl.Dsl in
  let r = parameter ~name:"R" () and c = parameter ~name:"C" () in
  let img = image ~name:"in" Float [ param_b r +~ ib 2; param_b c +~ ib 2 ] in
  let x = variable ~name:"x" () and y = variable ~name:"y" () in
  let dom =
    [
      (x, interval (ib 0) (param_b r +~ ib 1));
      (y, interval (ib 0) (param_b c +~ ib 1));
    ]
  in
  let interior = in_box [ (v x, i 1, p r); (v y, i 1, p c) ] in
  let bx = func ~name:"bx" Float dom in
  define bx
    [
      case interior
        (fl (1. /. 3.)
        *: (img_at img [ v x -: i 1; v y ]
           +: img_at img [ v x; v y ]
           +: img_at img [ v x +: i 1; v y ]));
    ];
  let by = func ~name:"by" Float dom in
  define by
    [
      case interior
        (fl (1. /. 3.)
        *: (app bx [ v x; v y -: i 1 ]
           +: app bx [ v x; v y ]
           +: app bx [ v x; v y +: i 1 ]));
    ];
  (r, c, img, by)

(* ---- random pipelines (shared by the fuzzing and fault suites) ----

   Stage grids follow the pyramid convention: logical size s, domain
   [0 .. s+3], computed interior [2 .. s].  All four operation kinds
   keep accesses inside the producer's domain (see Pyramid). *)
type op = Point | Stencil | Down | Up

let pp_ops ops =
  String.concat ";"
    (List.map
       (function Point -> "P" | Stencil -> "S" | Down -> "D" | Up -> "U")
       ops)

let gen_pipeline =
  let open QCheck.Gen in
  let* n_stages = int_range 2 8 in
  let* ops =
    list_repeat n_stages
      (frequency
         [ (3, return Point); (3, return Stencil); (2, return Down); (2, return Up) ])
  in
  let* extra_edges = list_repeat n_stages (int_range 0 10) in
  let* coeffs = list_repeat n_stages (int_range 1 3) in
  return (ops, extra_edges, coeffs)

let build_random (ops, extra_edges, coeffs) =
  let open Polymage_dsl.Dsl in
  let x = Types.var ~name:"x" () and y = Types.var ~name:"y" () in
  let base_size = 64 in
  let img = image ~name:"rin" Float [ ib (base_size + 4); ib (base_size + 4) ] in
  let dom s =
    [ (x, interval (ib 0) (ib (s + 3))); (y, interval (ib 0) (ib (s + 3))) ]
  in
  let interior s = in_box [ (v x, i 2, i s); (v y, i 2, i s) ] in
  (* stage list with their logical sizes; the image is size base_size *)
  let stages = ref [] in
  let idx = ref 0 in
  List.iter2
    (fun op (extra, coef) ->
      let k = !idx in
      incr idx;
      (* producer: previous stage or the image *)
      let prev_size, prev_sample =
        match !stages with
        | [] -> (base_size, fun ix iy -> img_at img [ ix; iy ])
        | (s, f) :: _ -> (s, fun ix iy -> app f [ ix; iy ])
      in
      let op =
        (* keep sizes within [8, 128] *)
        match op with
        | Down when prev_size < 16 -> Stencil
        | Up when prev_size > 64 -> Stencil
        | o -> o
      in
      let size, rhs =
        match op with
        | Point ->
          ( prev_size,
            (fl (float_of_int coef) *: prev_sample (v x) (v y)) +: fl 0.5 )
        | Stencil ->
          ( prev_size,
            fl (1. /. 5.)
            *: (prev_sample (v x -: i 1) (v y)
               +: prev_sample (v x +: i 1) (v y)
               +: prev_sample (v x) (v y -: i 1)
               +: prev_sample (v x) (v y +: i 1)
               +: prev_sample (v x) (v y)) )
        | Down ->
          ( prev_size / 2,
            prev_sample ((i 2 *: v x) -: i 1) (i 2 *: v y)
            +: prev_sample (i 2 *: v x) ((i 2 *: v y) +: i 1) )
        | Up ->
          ( prev_size * 2,
            prev_sample ((v x -: i 1) /^ 2) (v y /^ 2)
            +: prev_sample ((v x +: i 1) /^ 2) ((v y +: i 1) /^ 2) )
      in
      (* occasionally add a same-size point-wise side input, making the
         graph a DAG rather than a chain *)
      let rhs =
        let same_size = List.filter (fun (s, _) -> s = size) !stages in
        if same_size <> [] && extra mod 3 = 0 then
          let _, g = List.nth same_size (extra mod List.length same_size) in
          rhs +: app g [ v x; v y ]
        else rhs
      in
      let f = func ~name:(Printf.sprintf "s%d" k) Float (dom size) in
      define f [ case (interior size) rhs ];
      stages := (size, f) :: !stages)
    ops
    (List.combine extra_edges coeffs);
  match !stages with
  | (_, out) :: _ -> (img, out)
  | [] -> assert false

(* deterministic input fills for random pipelines *)
let rand_fill c = float_of_int (((c.(0) * 13) + (c.(1) * 29)) mod 23) /. 7.
let fault_fill c = float_of_int (((c.(0) * 7) + (c.(1) * 31)) mod 17) /. 3.

let rand_images img env fill = [ (img, Rt.Buffer.of_image img env fill) ]

(* Naive oracle: base configuration (no grouping/tiling/vec/kernels). *)
let naive_output out env images =
  let plan =
    C.Compile.run (C.Options.base ~estimates:env ()) ~outputs:[ out ]
  in
  Rt.Executor.output_buffer (Rt.Executor.run plan env ~images) out
